"""Declarative, seeded fault plans.

A :class:`FaultPlan` describes *what goes wrong* in a run — message drops,
duplicates, delays, per-link degradation, per-rank stragglers, rank
crashes — as data, decoupled from *how* each backend realises it.  The
same plan object drives both execution backends:

* :func:`repro.simnet.simulate.simulate` charges retransmission latency,
  degraded-link serialization, and straggler slowdown against the machine
  model, and turns crashed ranks into clean partial-completion results.
* :class:`repro.runtime.threaded.ThreadedTransport` drops/duplicates real
  payloads on its lossy channels and recovers them through an ack/retry
  protocol with exponential backoff.

Every stochastic decision is a pure function of ``(seed, link, sequence
number, attempt)`` via the counter-based construction in
:mod:`repro.faults.rng`, so a plan is exactly reproducible on either
backend, under any thread interleaving: message ``seq`` on link ``(src,
dst)`` is dropped in the simulator iff it is dropped in the threaded
transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import MachineError
from .rng import bernoulli

__all__ = ["RetryPolicy", "LinkFault", "Straggler", "Crash", "FaultPlan"]

# Salts keep the drop / duplicate / delay decision streams independent.
_SALT_DROP = 1
_SALT_DUP = 2
_SALT_DELAY = 3


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise MachineError(f"{name} must be in [0, 1], got {value}")


def _check_factor(name: str, value: float) -> None:
    if value < 1.0:
        raise MachineError(f"{name} must be >= 1, got {value}")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard a backend fights a lossy link before declaring it dead.

    Parameters
    ----------
    max_retries:
        Retransmissions allowed per message *after* the first attempt;
        a message makes at most ``max_retries + 1`` trips.
    rto:
        Initial retransmission timeout in wall-clock seconds (threaded
        transport).  The simulator derives its timeout from the machine
        model instead (≈ one round trip plus serialization), so simulated
        and wall time never mix.
    backoff:
        Exponential backoff multiplier applied per retry.
    max_rto:
        Cap on the backed-off timeout (seconds, threaded transport).
    """

    max_retries: int = 6
    rto: float = 0.05
    backoff: float = 2.0
    max_rto: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise MachineError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.rto <= 0:
            raise MachineError(f"rto must be > 0, got {self.rto}")
        if self.backoff < 1.0:
            raise MachineError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_rto < self.rto:
            raise MachineError(
                f"max_rto {self.max_rto} must be >= rto {self.rto}"
            )

    def rto_after(self, attempt: int) -> float:
        """Backed-off timeout (seconds) following transmission ``attempt``."""
        return min(self.rto * self.backoff**attempt, self.max_rto)


@dataclass(frozen=True)
class LinkFault:
    """Degradation of one directed link ``src -> dst``.

    ``drop_rate``/``dup_rate`` add to the plan-wide rates (as independent
    events); ``delay_factor`` multiplies the link's latency
    unconditionally; ``bandwidth_factor`` multiplies its serialization
    cost (2.0 = the link moves bytes at half speed).
    """

    src: int
    dst: int
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_factor: float = 1.0
    bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise MachineError(f"link endpoints must be >= 0, got "
                               f"({self.src}, {self.dst})")
        if self.src == self.dst:
            raise MachineError(f"link fault on self-loop {self.src}")
        _check_rate("link drop_rate", self.drop_rate)
        _check_rate("link dup_rate", self.dup_rate)
        _check_factor("link delay_factor", self.delay_factor)
        _check_factor("link bandwidth_factor", self.bandwidth_factor)


@dataclass(frozen=True)
class Straggler:
    """Rank ``rank`` runs ``factor`` times slower than its peers.

    The simulator scales the rank's injection overhead, its sender-side
    per-message latency, and its reduction compute; the threaded
    transport sleeps ``plan.straggler_step_delay * (factor - 1)`` wall
    seconds per step.
    """

    rank: int
    factor: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise MachineError(f"straggler rank must be >= 0, got {self.rank}")
        _check_factor("straggler factor", self.factor)


@dataclass(frozen=True)
class Crash:
    """Rank ``rank`` dies immediately before executing step ``step``."""

    rank: int
    step: int

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise MachineError(f"crash rank must be >= 0, got {self.rank}")
        if self.step < 0:
            raise MachineError(f"crash step must be >= 0, got {self.step}")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of injected faults.

    Parameters
    ----------
    drop_rate:
        Probability each transmission attempt of a message is lost.
        Retransmission draws are independent, so with retries a message
        survives any ``drop_rate < 1`` link with probability
        ``1 - drop_rate ** (max_retries + 1)``.
    dup_rate:
        Probability a message's first transmission is delivered twice
        (the receiver deduplicates by sequence number).
    delay_rate / delay_factor:
        With probability ``delay_rate`` a message's latency is multiplied
        by ``delay_factor``.
    seed:
        Master seed; all decisions derive from it deterministically.
    links / stragglers / crashes:
        Per-link, per-rank, and crash fault declarations (see
        :class:`LinkFault`, :class:`Straggler`, :class:`Crash`).
    retry:
        The :class:`RetryPolicy` backends use to recover from drops.
    straggler_step_delay:
        Wall-clock unit (seconds) the threaded transport sleeps per step
        per unit of straggler factor above 1.
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    delay_factor: float = 4.0
    seed: int = 0
    links: Tuple[LinkFault, ...] = ()
    stragglers: Tuple[Straggler, ...] = ()
    crashes: Tuple[Crash, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    straggler_step_delay: float = 0.001

    def __post_init__(self) -> None:
        _check_rate("drop_rate", self.drop_rate)
        _check_rate("dup_rate", self.dup_rate)
        _check_rate("delay_rate", self.delay_rate)
        _check_factor("delay_factor", self.delay_factor)
        if self.straggler_step_delay < 0:
            raise MachineError(
                f"straggler_step_delay must be >= 0, got "
                f"{self.straggler_step_delay}"
            )
        object.__setattr__(
            self, "_links", {(lf.src, lf.dst): lf for lf in self.links}
        )
        if len(self._links) != len(self.links):  # type: ignore[attr-defined]
            raise MachineError("duplicate LinkFault for the same (src, dst)")
        object.__setattr__(
            self, "_stragglers", {s.rank: s.factor for s in self.stragglers}
        )
        object.__setattr__(
            self, "_crashes", {c.rank: c.step for c in self.crashes}
        )
        if len(self._crashes) != len(self.crashes):  # type: ignore[attr-defined]
            raise MachineError("duplicate Crash for the same rank")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_active(self) -> bool:
        """Whether this plan injects anything at all."""
        return bool(
            self.drop_rate
            or self.dup_rate
            or self.delay_rate
            or self.links
            or self.stragglers
            or self.crashes
        )

    @property
    def has_loss(self) -> bool:
        """Whether any link can drop messages (retry machinery needed)."""
        return bool(
            self.drop_rate or any(lf.drop_rate for lf in self.links)
        )

    def link(self, src: int, dst: int) -> Optional[LinkFault]:
        """The per-link fault declared for ``src -> dst``, if any."""
        return self._links.get((src, dst))  # type: ignore[attr-defined]

    def describe(self) -> str:
        parts = []
        if self.drop_rate:
            parts.append(f"drop={self.drop_rate:g}")
        if self.dup_rate:
            parts.append(f"dup={self.dup_rate:g}")
        if self.delay_rate:
            parts.append(
                f"delay={self.delay_rate:g}x{self.delay_factor:g}"
            )
        if self.links:
            parts.append(f"{len(self.links)} degraded link(s)")
        if self.stragglers:
            parts.append(f"{len(self.stragglers)} straggler(s)")
        if self.crashes:
            parts.append(f"{len(self.crashes)} crash(es)")
        body = ", ".join(parts) if parts else "no faults"
        return f"FaultPlan(seed={self.seed}: {body})"

    # ------------------------------------------------------------------
    # Deterministic per-message decisions
    # ------------------------------------------------------------------

    def _rates(self, src: int, dst: int) -> Tuple[float, float]:
        """Effective (drop, dup) rates on ``src -> dst`` (independent
        combination of the plan-wide and per-link rates)."""
        lf = self.link(src, dst)
        if lf is None:
            return self.drop_rate, self.dup_rate
        drop = 1.0 - (1.0 - self.drop_rate) * (1.0 - lf.drop_rate)
        dup = 1.0 - (1.0 - self.dup_rate) * (1.0 - lf.dup_rate)
        return drop, dup

    def drops(self, src: int, dst: int, seq: int, attempt: int) -> bool:
        """Whether transmission ``attempt`` of message ``seq`` on
        ``src -> dst`` is lost."""
        drop, _ = self._rates(src, dst)
        return bernoulli(drop, self.seed, _SALT_DROP, src, dst, seq, attempt)

    def duplicates(self, src: int, dst: int, seq: int) -> int:
        """Extra delivered copies of message ``seq`` (0 or 1)."""
        _, dup = self._rates(src, dst)
        return int(bernoulli(dup, self.seed, _SALT_DUP, src, dst, seq))

    def delay(self, src: int, dst: int, seq: int) -> float:
        """Multiplicative latency factor for message ``seq`` (>= 1)."""
        factor = 1.0
        lf = self.link(src, dst)
        if lf is not None:
            factor *= lf.delay_factor
        if self.delay_rate and bernoulli(
            self.delay_rate, self.seed, _SALT_DELAY, src, dst, seq
        ):
            factor *= self.delay_factor
        return factor

    def bandwidth_penalty(self, src: int, dst: int) -> float:
        """Serialization-cost multiplier for the link (>= 1)."""
        lf = self.link(src, dst)
        return lf.bandwidth_factor if lf is not None else 1.0

    def attempts_needed(self, src: int, dst: int, seq: int) -> Optional[int]:
        """Index of the first surviving transmission of message ``seq``
        under :attr:`retry`, or ``None`` if every attempt is dropped
        (the link is effectively dead for this message)."""
        for attempt in range(self.retry.max_retries + 1):
            if not self.drops(src, dst, seq, attempt):
                return attempt
        return None

    def straggler_factor(self, rank: int) -> float:
        """Slowdown factor for ``rank`` (1.0 = full speed)."""
        return self._stragglers.get(rank, 1.0)  # type: ignore[attr-defined]

    def crash_step(self, rank: int) -> Optional[int]:
        """The step before which ``rank`` crashes, or ``None``."""
        return self._crashes.get(rank)  # type: ignore[attr-defined]
