"""Declarative, seeded fault plans.

A :class:`FaultPlan` describes *what goes wrong* in a run — message drops,
duplicates, delays, per-link degradation, per-rank stragglers, rank
crashes — as data, decoupled from *how* each backend realises it.  The
same plan object drives both execution backends:

* :func:`repro.simnet.simulate.simulate` charges retransmission latency,
  degraded-link serialization, and straggler slowdown against the machine
  model, and turns crashed ranks into clean partial-completion results.
* :class:`repro.runtime.threaded.ThreadedTransport` drops/duplicates real
  payloads on its lossy channels and recovers them through an ack/retry
  protocol with exponential backoff.

Every stochastic decision is a pure function of ``(seed, link, sequence
number, attempt)`` via the counter-based construction in
:mod:`repro.faults.rng`, so a plan is exactly reproducible on either
backend, under any thread interleaving: message ``seq`` on link ``(src,
dst)`` is dropped in the simulator iff it is dropped in the threaded
transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..errors import MachineError
from .rng import bernoulli

__all__ = [
    "RetryPolicy",
    "LinkFault",
    "Straggler",
    "Crash",
    "FaultPlan",
    "FaultPhase",
    "PhasedFaultPlan",
    "BackgroundJob",
    "ContentionModel",
    "combine_plans",
]

# Salts keep the drop / duplicate / delay decision streams independent.
_SALT_DROP = 1
_SALT_DUP = 2
_SALT_DELAY = 3
_SALT_CONTENTION = 4


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise MachineError(f"{name} must be in [0, 1], got {value}")


def _check_factor(name: str, value: float) -> None:
    if value < 1.0:
        raise MachineError(f"{name} must be >= 1, got {value}")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard a backend fights a lossy link before declaring it dead.

    Parameters
    ----------
    max_retries:
        Retransmissions allowed per message *after* the first attempt;
        a message makes at most ``max_retries + 1`` trips.
    rto:
        Initial retransmission timeout in wall-clock seconds (threaded
        transport).  The simulator derives its timeout from the machine
        model instead (≈ one round trip plus serialization), so simulated
        and wall time never mix.
    backoff:
        Exponential backoff multiplier applied per retry.
    max_rto:
        Cap on the backed-off timeout (seconds, threaded transport).
    """

    max_retries: int = 6
    rto: float = 0.05
    backoff: float = 2.0
    max_rto: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise MachineError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.rto <= 0:
            raise MachineError(f"rto must be > 0, got {self.rto}")
        if self.backoff < 1.0:
            raise MachineError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_rto < self.rto:
            raise MachineError(
                f"max_rto {self.max_rto} must be >= rto {self.rto}"
            )

    def rto_after(self, attempt: int) -> float:
        """Backed-off timeout (seconds) following transmission ``attempt``."""
        return min(self.rto * self.backoff**attempt, self.max_rto)


@dataclass(frozen=True)
class LinkFault:
    """Degradation of one directed link ``src -> dst``.

    ``drop_rate``/``dup_rate`` add to the plan-wide rates (as independent
    events); ``delay_factor`` multiplies the link's latency
    unconditionally; ``bandwidth_factor`` multiplies its serialization
    cost (2.0 = the link moves bytes at half speed).
    """

    src: int
    dst: int
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_factor: float = 1.0
    bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise MachineError(f"link endpoints must be >= 0, got "
                               f"({self.src}, {self.dst})")
        if self.src == self.dst:
            raise MachineError(f"link fault on self-loop {self.src}")
        _check_rate("link drop_rate", self.drop_rate)
        _check_rate("link dup_rate", self.dup_rate)
        _check_factor("link delay_factor", self.delay_factor)
        _check_factor("link bandwidth_factor", self.bandwidth_factor)


@dataclass(frozen=True)
class Straggler:
    """Rank ``rank`` runs ``factor`` times slower than its peers.

    The simulator scales the rank's injection overhead, its sender-side
    per-message latency, and its reduction compute; the threaded
    transport sleeps ``plan.straggler_step_delay * (factor - 1)`` wall
    seconds per step.
    """

    rank: int
    factor: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise MachineError(f"straggler rank must be >= 0, got {self.rank}")
        _check_factor("straggler factor", self.factor)


@dataclass(frozen=True)
class Crash:
    """Rank ``rank`` dies immediately before executing step ``step``."""

    rank: int
    step: int

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise MachineError(f"crash rank must be >= 0, got {self.rank}")
        if self.step < 0:
            raise MachineError(f"crash step must be >= 0, got {self.step}")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of injected faults.

    Parameters
    ----------
    drop_rate:
        Probability each transmission attempt of a message is lost.
        Retransmission draws are independent, so with retries a message
        survives any ``drop_rate < 1`` link with probability
        ``1 - drop_rate ** (max_retries + 1)``.
    dup_rate:
        Probability a message's first transmission is delivered twice
        (the receiver deduplicates by sequence number).
    delay_rate / delay_factor:
        With probability ``delay_rate`` a message's latency is multiplied
        by ``delay_factor``.
    seed:
        Master seed; all decisions derive from it deterministically.
    links / stragglers / crashes:
        Per-link, per-rank, and crash fault declarations (see
        :class:`LinkFault`, :class:`Straggler`, :class:`Crash`).
    retry:
        The :class:`RetryPolicy` backends use to recover from drops.
    straggler_step_delay:
        Wall-clock unit (seconds) the threaded transport sleeps per step
        per unit of straggler factor above 1.
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    delay_factor: float = 4.0
    seed: int = 0
    links: Tuple[LinkFault, ...] = ()
    stragglers: Tuple[Straggler, ...] = ()
    crashes: Tuple[Crash, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    straggler_step_delay: float = 0.001

    def __post_init__(self) -> None:
        _check_rate("drop_rate", self.drop_rate)
        _check_rate("dup_rate", self.dup_rate)
        _check_rate("delay_rate", self.delay_rate)
        _check_factor("delay_factor", self.delay_factor)
        if self.straggler_step_delay < 0:
            raise MachineError(
                f"straggler_step_delay must be >= 0, got "
                f"{self.straggler_step_delay}"
            )
        object.__setattr__(
            self, "_links", {(lf.src, lf.dst): lf for lf in self.links}
        )
        if len(self._links) != len(self.links):  # type: ignore[attr-defined]
            raise MachineError("duplicate LinkFault for the same (src, dst)")
        object.__setattr__(
            self, "_stragglers", {s.rank: s.factor for s in self.stragglers}
        )
        object.__setattr__(
            self, "_crashes", {c.rank: c.step for c in self.crashes}
        )
        if len(self._crashes) != len(self.crashes):  # type: ignore[attr-defined]
            raise MachineError("duplicate Crash for the same rank")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_active(self) -> bool:
        """Whether this plan injects anything at all."""
        return bool(
            self.drop_rate
            or self.dup_rate
            or self.delay_rate
            or self.links
            or self.stragglers
            or self.crashes
        )

    @property
    def has_loss(self) -> bool:
        """Whether any link can drop messages (retry machinery needed)."""
        return bool(
            self.drop_rate or any(lf.drop_rate for lf in self.links)
        )

    def link(self, src: int, dst: int) -> Optional[LinkFault]:
        """The per-link fault declared for ``src -> dst``, if any."""
        return self._links.get((src, dst))  # type: ignore[attr-defined]

    def describe(self) -> str:
        parts = []
        if self.drop_rate:
            parts.append(f"drop={self.drop_rate:g}")
        if self.dup_rate:
            parts.append(f"dup={self.dup_rate:g}")
        if self.delay_rate:
            parts.append(
                f"delay={self.delay_rate:g}x{self.delay_factor:g}"
            )
        if self.links:
            parts.append(f"{len(self.links)} degraded link(s)")
        if self.stragglers:
            parts.append(f"{len(self.stragglers)} straggler(s)")
        if self.crashes:
            parts.append(f"{len(self.crashes)} crash(es)")
        body = ", ".join(parts) if parts else "no faults"
        return f"FaultPlan(seed={self.seed}: {body})"

    # ------------------------------------------------------------------
    # Deterministic per-message decisions
    # ------------------------------------------------------------------

    def _rates(self, src: int, dst: int) -> Tuple[float, float]:
        """Effective (drop, dup) rates on ``src -> dst`` (independent
        combination of the plan-wide and per-link rates)."""
        lf = self.link(src, dst)
        if lf is None:
            return self.drop_rate, self.dup_rate
        drop = 1.0 - (1.0 - self.drop_rate) * (1.0 - lf.drop_rate)
        dup = 1.0 - (1.0 - self.dup_rate) * (1.0 - lf.dup_rate)
        return drop, dup

    def drops(self, src: int, dst: int, seq: int, attempt: int) -> bool:
        """Whether transmission ``attempt`` of message ``seq`` on
        ``src -> dst`` is lost."""
        drop, _ = self._rates(src, dst)
        return bernoulli(drop, self.seed, _SALT_DROP, src, dst, seq, attempt)

    def duplicates(self, src: int, dst: int, seq: int) -> int:
        """Extra delivered copies of message ``seq`` (0 or 1)."""
        _, dup = self._rates(src, dst)
        return int(bernoulli(dup, self.seed, _SALT_DUP, src, dst, seq))

    def delay(self, src: int, dst: int, seq: int) -> float:
        """Multiplicative latency factor for message ``seq`` (>= 1)."""
        factor = 1.0
        lf = self.link(src, dst)
        if lf is not None:
            factor *= lf.delay_factor
        if self.delay_rate and bernoulli(
            self.delay_rate, self.seed, _SALT_DELAY, src, dst, seq
        ):
            factor *= self.delay_factor
        return factor

    def bandwidth_penalty(self, src: int, dst: int) -> float:
        """Serialization-cost multiplier for the link (>= 1)."""
        lf = self.link(src, dst)
        return lf.bandwidth_factor if lf is not None else 1.0

    def attempts_needed(self, src: int, dst: int, seq: int) -> Optional[int]:
        """Index of the first surviving transmission of message ``seq``
        under :attr:`retry`, or ``None`` if every attempt is dropped
        (the link is effectively dead for this message)."""
        for attempt in range(self.retry.max_retries + 1):
            if not self.drops(src, dst, seq, attempt):
                return attempt
        return None

    def straggler_factor(self, rank: int) -> float:
        """Slowdown factor for ``rank`` (1.0 = full speed)."""
        return self._stragglers.get(rank, 1.0)  # type: ignore[attr-defined]

    def crash_step(self, rank: int) -> Optional[int]:
        """The step before which ``rank`` crashes, or ``None``."""
        return self._crashes.get(rank)  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# Time-varying conditions: phased plans and background-job contention.
#
# A FaultPlan describes one *static* regime.  Production fabrics drift:
# links flap, stragglers migrate, neighbor jobs come and go.  The two
# declarations below describe that drift as data — a round-indexed
# sequence of regimes and a seeded background-traffic mix — and resolve,
# per round, to an ordinary FaultPlan that the simulator charges exactly
# like any other (repro.adapt runs its feedback loop against them).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPhase:
    """One regime of a :class:`PhasedFaultPlan`.

    ``plan`` holds from round ``start_round`` (inclusive) until the next
    phase begins; ``plan=None`` means the fabric is healthy during the
    phase.  ``label`` names the phase in reports ("flap", "healed", ...).
    """

    start_round: int
    plan: Optional[FaultPlan] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.start_round < 0:
            raise MachineError(
                f"phase start_round must be >= 0, got {self.start_round}"
            )

    def describe(self) -> str:
        """One-line summary: start round, label, and the phase's plan."""
        body = self.plan.describe() if self.plan is not None else "healthy"
        name = f" {self.label!r}" if self.label else ""
        return f"round>={self.start_round}{name}: {body}"


@dataclass(frozen=True)
class PhasedFaultPlan:
    """Round-indexed fault regimes: degradations that appear and heal.

    Phases are sorted by ``start_round`` (strictly increasing); before
    the first phase the fabric is healthy.  :meth:`plan_at` resolves the
    regime governing a round — the adaptive loop calls it once per round
    and hands the result straight to the simulator, so a phased plan
    costs exactly what the equivalent sequence of static plans would.
    """

    phases: Tuple[FaultPhase, ...] = ()

    def __post_init__(self) -> None:
        starts = [ph.start_round for ph in self.phases]
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise MachineError(
                f"phase start_rounds must be strictly increasing, "
                f"got {starts}"
            )

    @property
    def change_rounds(self) -> Tuple[int, ...]:
        """The rounds at which the governing regime changes."""
        return tuple(ph.start_round for ph in self.phases)

    def phase_at(self, round_index: int) -> Optional[FaultPhase]:
        """The phase governing ``round_index``, or ``None`` before the
        first phase begins."""
        if round_index < 0:
            raise MachineError(
                f"round_index must be >= 0, got {round_index}"
            )
        governing = None
        for ph in self.phases:
            if ph.start_round <= round_index:
                governing = ph
            else:
                break
        return governing

    def plan_at(self, round_index: int) -> Optional[FaultPlan]:
        """The fault plan charged during ``round_index`` (``None`` =
        healthy)."""
        ph = self.phase_at(round_index)
        return ph.plan if ph is not None else None

    def describe(self) -> str:
        """One-line summary of every phase in order."""
        if not self.phases:
            return "PhasedFaultPlan(healthy)"
        return "PhasedFaultPlan(" + "; ".join(
            ph.describe() for ph in self.phases
        ) + ")"


@dataclass(frozen=True)
class BackgroundJob:
    """One neighbor job sharing the fabric with the measured collective.

    While active, every directed link between two of the job's ``ranks``
    is congested: its serialization cost is multiplied by
    ``1 + intensity`` and its latency by ``1 + delay``.  ``duty`` is the
    probability the job is active in any given round — activity is a
    pure function of ``(model seed, job index, round)``, so a traffic
    mix replays identically on every backend and at any job count.
    """

    name: str
    ranks: Tuple[int, ...]
    intensity: float
    delay: float = 0.0
    duty: float = 1.0

    def __post_init__(self) -> None:
        if len(set(self.ranks)) < 2:
            raise MachineError(
                f"background job {self.name!r} needs >= 2 distinct ranks "
                f"to load a link, got {self.ranks}"
            )
        if any(r < 0 for r in self.ranks):
            raise MachineError(
                f"background job {self.name!r} ranks must be >= 0"
            )
        if self.intensity <= 0.0:
            raise MachineError(
                f"background job {self.name!r} intensity must be > 0, "
                f"got {self.intensity}"
            )
        if self.delay < 0.0:
            raise MachineError(
                f"background job {self.name!r} delay must be >= 0, "
                f"got {self.delay}"
            )
        if not 0.0 <= self.duty <= 1.0:
            raise MachineError(
                f"background job {self.name!r} duty must be in [0, 1], "
                f"got {self.duty}"
            )


@dataclass(frozen=True)
class ContentionModel:
    """Deterministic multi-job traffic coupling link costs per round.

    A seeded mix of :class:`BackgroundJob` s; :meth:`plan_at` resolves
    the mix into an ordinary :class:`FaultPlan` carrying one
    :class:`LinkFault` per congested link, with overlapping jobs
    compounding multiplicatively — exactly how shared-fabric congestion
    composes.  The result is charged by the simulator like any declared
    degradation, so contention and hard faults share one cost model.
    """

    jobs: Tuple[BackgroundJob, ...] = ()
    seed: int = 0

    def active_jobs(self, round_index: int) -> Tuple[BackgroundJob, ...]:
        """The jobs on the fabric during ``round_index`` (seeded duty
        cycling; a job with ``duty=1`` is always on)."""
        if round_index < 0:
            raise MachineError(
                f"round_index must be >= 0, got {round_index}"
            )
        active = []
        for idx, job in enumerate(self.jobs):
            if job.duty >= 1.0 or bernoulli(
                job.duty, self.seed, _SALT_CONTENTION, idx, round_index
            ):
                active.append(job)
        return tuple(active)

    def link_factors(
        self, round_index: int
    ) -> Dict[Tuple[int, int], Tuple[float, float]]:
        """Per-link ``(delay_factor, bandwidth_factor)`` during the
        round, compounded across every active job (links not present
        are uncongested)."""
        factors: Dict[Tuple[int, int], Tuple[float, float]] = {}
        for job in self.active_jobs(round_index):
            ranks = sorted(set(job.ranks))
            for src in ranks:
                for dst in ranks:
                    if src == dst:
                        continue
                    delay, bw = factors.get((src, dst), (1.0, 1.0))
                    factors[(src, dst)] = (
                        delay * (1.0 + job.delay),
                        bw * (1.0 + job.intensity),
                    )
        return factors

    def plan_at(self, round_index: int) -> Optional[FaultPlan]:
        """The round's contention as a plain :class:`FaultPlan` (``None``
        when no job is active)."""
        factors = self.link_factors(round_index)
        if not factors:
            return None
        links = tuple(
            LinkFault(
                src=src,
                dst=dst,
                delay_factor=delay,
                bandwidth_factor=bw,
            )
            for (src, dst), (delay, bw) in sorted(factors.items())
        )
        return FaultPlan(seed=self.seed, links=links)

    def describe(self) -> str:
        """One-line summary of the traffic mix."""
        if not self.jobs:
            return "ContentionModel(idle fabric)"
        parts = ", ".join(
            f"{j.name}(x{1.0 + j.intensity:g} on {len(set(j.ranks))} "
            f"ranks, duty {j.duty:g})"
            for j in self.jobs
        )
        return f"ContentionModel(seed={self.seed}: {parts})"


def _merge_link(
    a: Optional[LinkFault], b: Optional[LinkFault], src: int, dst: int
) -> LinkFault:
    """Compound two faults on one link: rates combine as independent
    events, factors multiply."""
    if a is None:
        assert b is not None
        return b
    if b is None:
        return a
    return LinkFault(
        src=src,
        dst=dst,
        drop_rate=1.0 - (1.0 - a.drop_rate) * (1.0 - b.drop_rate),
        dup_rate=1.0 - (1.0 - a.dup_rate) * (1.0 - b.dup_rate),
        delay_factor=a.delay_factor * b.delay_factor,
        bandwidth_factor=a.bandwidth_factor * b.bandwidth_factor,
    )


def combine_plans(
    base: Optional[FaultPlan], extra: Optional[FaultPlan]
) -> Optional[FaultPlan]:
    """Charge two fault regimes at once — e.g. a phase's degradations
    *and* the round's background contention.

    Plan-wide rates combine as independent events; per-link faults merge
    with multiplied factors; stragglers multiply their slowdowns;
    crashes union (the earlier step wins for a rank both plans crash).
    The combined plan keeps ``base``'s seed and retry policy, so the
    per-message decision streams of a phase are unchanged by stacking
    contention on top.
    """
    if base is None:
        return extra
    if extra is None:
        return base
    links: Dict[Tuple[int, int], Optional[LinkFault]] = {
        (lf.src, lf.dst): lf for lf in base.links
    }
    for lf in extra.links:
        key = (lf.src, lf.dst)
        links[key] = _merge_link(links.get(key), lf, *key)
    stragglers: Dict[int, float] = {s.rank: s.factor for s in base.stragglers}
    for s in extra.stragglers:
        stragglers[s.rank] = stragglers.get(s.rank, 1.0) * s.factor
    crashes: Dict[int, int] = {c.rank: c.step for c in base.crashes}
    for c in extra.crashes:
        step = crashes.get(c.rank)
        crashes[c.rank] = c.step if step is None else min(step, c.step)
    return FaultPlan(
        drop_rate=1.0 - (1.0 - base.drop_rate) * (1.0 - extra.drop_rate),
        dup_rate=1.0 - (1.0 - base.dup_rate) * (1.0 - extra.dup_rate),
        delay_rate=1.0 - (1.0 - base.delay_rate) * (1.0 - extra.delay_rate),
        delay_factor=max(base.delay_factor, extra.delay_factor),
        seed=base.seed,
        links=tuple(links[key] for key in sorted(links)),  # type: ignore[misc]
        stragglers=tuple(
            Straggler(rank=r, factor=f)
            for r, f in sorted(stragglers.items())
        ),
        crashes=tuple(
            Crash(rank=r, step=s) for r, s in sorted(crashes.items())
        ),
        retry=base.retry,
        straggler_step_delay=base.straggler_step_delay,
    )
