"""Lossy in-process channels with sequence numbers, acks, and retries.

The threaded transport's original channels were bare ``SimpleQueue``s — a
perfectly reliable network.  :class:`LossyChannel` keeps the same directed
(src, dst) FIFO discipline but passes every payload through a
:class:`~repro.faults.plan.FaultPlan`: transmissions can be dropped or
duplicated, and delivery is protected by a sliding-window ack/retry
protocol:

* every payload gets a per-link sequence number,
* the receiver acks each packet it sees, deduplicates by sequence number,
  and re-orders out-of-order arrivals (retransmissions can overtake later
  packets) back into FIFO delivery,
* a per-transport :class:`ChannelMonitor` daemon retransmits unacked
  packets after an exponentially backed-off timeout, and after
  ``max_retries`` declares the channel *broken* with a structured
  :class:`ChannelFailure` — never a silent hang.

Receives poll in short slices so a transport-wide abort (a crashed peer, a
broken channel anywhere in the job) propagates to every blocked rank
within ~2 slices (~100 ms at the default slice) instead of the full
receive timeout.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..errors import MachineError
from ..obs import OBS
from .plan import FaultPlan, RetryPolicy

__all__ = [
    "ChannelFailure",
    "ChannelTimeout",
    "ChannelAborted",
    "ChannelBroken",
    "LossyChannel",
    "ChannelMonitor",
    "POLL_SLICE",
]

#: Default polling slice for blocked receives (seconds).  Aborts propagate
#: within about two slices.
POLL_SLICE = 0.05


@dataclass(frozen=True)
class ChannelFailure:
    """Diagnosis of a channel whose retries were exhausted."""

    src: int
    dst: int
    seq: int
    attempts: int

    def describe(self) -> str:
        return (
            f"link {self.src}->{self.dst}: message seq={self.seq} lost "
            f"after {self.attempts} transmission attempt(s)"
        )


class ChannelTimeout(Exception):
    """A receive exceeded its deadline with no packet and no abort."""


class ChannelAborted(Exception):
    """The transport aborted while this receive was blocked."""


class ChannelBroken(Exception):
    """The channel's retry budget was exhausted; carries the diagnosis."""

    def __init__(self, failure: ChannelFailure) -> None:
        super().__init__(failure.describe())
        self.failure = failure


class _Packet:
    __slots__ = ("seq", "attempt", "payload")

    def __init__(self, seq: int, attempt: int, payload: Any) -> None:
        self.seq = seq
        self.attempt = attempt
        self.payload = payload


class _InFlight:
    __slots__ = ("payload", "attempt", "deadline")

    def __init__(self, payload: Any, attempt: int, deadline: float) -> None:
        self.payload = payload
        self.attempt = attempt
        self.deadline = deadline


class LossyChannel:
    """One directed (src, dst) link carrying sequenced, acked packets.

    With ``plan=None`` (or a plan that cannot drop on this link) the
    channel is *reliable*: sends enqueue exactly one packet and no
    in-flight tracking happens — the fast path stays one ``put`` and one
    ``get`` per message, plus the sliced abort polling.
    """

    def __init__(
        self,
        src: int,
        dst: int,
        plan: Optional[FaultPlan] = None,
        *,
        poll_slice: float = POLL_SLICE,
    ) -> None:
        self.src = src
        self.dst = dst
        self.plan = plan if plan is not None and plan.is_active else None
        self.policy: RetryPolicy = (
            self.plan.retry if self.plan is not None else RetryPolicy()
        )
        self.poll_slice = poll_slice
        self.wire: "queue.SimpleQueue[_Packet]" = queue.SimpleQueue()
        self.failure: Optional[ChannelFailure] = None
        self.retransmissions = 0
        self._lock = threading.Lock()
        self._send_seq = 0
        self._delivered = 0       # seqs handed to the application
        self._recv_next = 0       # next seq recv() will release
        self._stash: Dict[int, Any] = {}  # out-of-order arrivals
        self._acked: set = set()
        self._inflight: Dict[int, _InFlight] = {}
        if self.plan is not None:
            drop, _ = self.plan._rates(src, dst)
            self._lossy = drop > 0.0
        else:
            self._lossy = False

    # -- sender side ----------------------------------------------------

    def send(self, payload: Any) -> int:
        """Transmit ``payload``; returns its sequence number.

        Never blocks: loss recovery is the :class:`ChannelMonitor`'s job.
        """
        with self._lock:
            seq = self._send_seq
            self._send_seq += 1
            if self._lossy:
                self._inflight[seq] = _InFlight(
                    payload, 0, time.monotonic() + self.policy.rto_after(0)
                )
        self._transmit(seq, payload, 0)
        return seq

    def _transmit(self, seq: int, payload: Any, attempt: int) -> None:
        plan = self.plan
        if plan is not None:
            if plan.drops(self.src, self.dst, seq, attempt):
                if OBS.enabled:
                    OBS.metrics.counter("repro_faults_drops_total").inc()
                return  # lost on the wire; the monitor will retransmit
            copies = 1 + (
                plan.duplicates(self.src, self.dst, seq) if attempt == 0 else 0
            )
            if copies > 1 and OBS.enabled:
                OBS.metrics.counter("repro_faults_duplicates_total").inc(
                    copies - 1
                )
        else:
            copies = 1
        for _ in range(copies):
            self.wire.put(_Packet(seq, attempt, payload))

    # -- receiver side --------------------------------------------------

    def recv(
        self,
        timeout: float,
        abort: Optional[threading.Event] = None,
    ) -> Any:
        """Block until the next in-order payload arrives.

        Polls in ``poll_slice`` chunks, raising :class:`ChannelAborted` as
        soon as ``abort`` is set, :class:`ChannelBroken` when the monitor
        declared this link dead, and :class:`ChannelTimeout` past
        ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                if self._recv_next in self._stash:
                    payload = self._stash.pop(self._recv_next)
                    self._recv_next += 1
                    self._delivered += 1
                    return payload
                failure = self.failure
            if failure is not None:
                raise ChannelBroken(failure)
            if abort is not None and abort.is_set():
                raise ChannelAborted()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ChannelTimeout()
            try:
                pkt = self.wire.get(timeout=min(self.poll_slice, remaining))
            except queue.Empty:
                continue
            with self._lock:
                self._acked.add(pkt.seq)
                if pkt.seq >= self._recv_next and pkt.seq not in self._stash:
                    self._stash[pkt.seq] = pkt.payload
                # else: duplicate or already-delivered retransmission.

    # -- accounting -----------------------------------------------------

    def undelivered(self) -> int:
        """Messages sent but not yet handed to the application."""
        with self._lock:
            return self._send_seq - self._delivered

    def _expire(self, now: float) -> Optional[ChannelFailure]:
        """Monitor hook: retransmit overdue packets, reap acked ones.

        Returns a :class:`ChannelFailure` the moment a packet exhausts its
        retry budget (the channel is marked broken as a side effect).
        """
        resend: List[_Packet] = []
        with self._lock:
            for seq in list(self._inflight):
                entry = self._inflight[seq]
                if seq in self._acked:
                    del self._inflight[seq]
                    self._acked.discard(seq)
                    continue
                if now < entry.deadline:
                    continue
                entry.attempt += 1
                if entry.attempt > self.policy.max_retries:
                    failure = ChannelFailure(
                        src=self.src,
                        dst=self.dst,
                        seq=seq,
                        attempts=entry.attempt,
                    )
                    self.failure = failure
                    del self._inflight[seq]
                    return failure
                backoff = self.policy.rto_after(entry.attempt)
                entry.deadline = now + backoff
                self.retransmissions += 1
                if OBS.enabled:
                    OBS.metrics.counter(
                        "repro_faults_retransmissions_total"
                    ).inc()
                    OBS.metrics.counter(
                        "repro_faults_backoff_seconds_total"
                    ).inc(backoff)
                resend.append(_Packet(seq, entry.attempt, entry.payload))
        for pkt in resend:
            self._transmit(pkt.seq, pkt.payload, pkt.attempt)
        return None


class ChannelMonitor:
    """Daemon thread driving retransmission across a set of channels.

    One monitor serves a whole transport.  Every ``tick`` seconds it scans
    the lossy channels' in-flight tables, retransmits overdue packets with
    exponential backoff, and on retry exhaustion invokes ``on_failure``
    (the transport's abort hook) with the broken channel's diagnosis.
    """

    def __init__(
        self,
        channels: Any,
        *,
        on_failure: Optional[Callable[[ChannelFailure], None]] = None,
        tick: Optional[float] = None,
    ) -> None:
        if callable(channels):
            # Lazy source (e.g. a session creating channels on demand):
            # re-evaluated every tick.
            self._source: Callable[[], List[LossyChannel]] = channels
        else:
            fixed = [ch for ch in channels if ch._lossy]
            self._source = lambda: fixed
        if tick is None:
            rtos = [ch.policy.rto for ch in self._source()]
            tick = max(min(rtos) / 4.0, 0.001) if rtos else 0.01
        if tick <= 0:
            raise MachineError(f"monitor tick must be > 0, got {tick}")
        self.tick = tick
        self.on_failure = on_failure
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="repro-fault-monitor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.tick):
            now = time.monotonic()
            for ch in self._source():
                if not ch._lossy or ch.failure is not None:
                    continue
                failure = ch._expire(now)
                if failure is not None and self.on_failure is not None:
                    self.on_failure(failure)
