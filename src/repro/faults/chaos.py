"""Chaos harness: sweep fault scenarios across the generalized algorithms.

The resilience contract this repo makes is *fail loud or finish right*:
under any seeded :class:`~repro.faults.plan.FaultPlan`, every collective
either completes with bit-correct results (loss masked by the ack/retry
protocol, slowdowns absorbed into the timeline) or raises a structured
fault error naming exactly which rank, step, peer, and retry budget gave
out.  Never a silent hang, never silent corruption.

This module turns that contract into a sweep: a set of named
:class:`ChaosScenario` s (light loss, heavy loss, duplicate storms,
degraded links, stragglers, crashes, dead links) crossed with every
algorithm in :data:`~repro.core.registry.GENERALIZED_ALGORITHMS` (paper
Table I) on both backends — the threaded transport, which actually
retransmits, and the simulator, which charges retransmission latency to
the machine model.  Each case is classified:

``ok``
    Completed; threaded results verified element-exact against the numpy
    reference, simulated runs produced finite completion times.
``fault``
    Raised :class:`~repro.errors.FaultError` /
    :class:`~repro.errors.PartialFailure` (or reported a partial
    completion) with a full diagnosis — the *correct* outcome for
    unmaskable faults like crashes and dead links when recovery is off.
``recovered``
    (With ``recover=``.)  The unmaskable fault fired, but the
    :mod:`repro.recovery` detect→shrink→rebuild→rerun loop healed it and
    the survivors' results verified bit-exact.
``unrecovered``
    (With ``recover=``.)  Recovery was asked for but gave up — budget
    exhausted, group below ``min_ranks``, or a dead rooted-collective
    root with no spare.  Counts against the exit status like ``FAIL``.
``FAIL``
    Anything else: wrong data, an unstructured error, a deadlock.  The
    sweep's exit status.

Run it via ``repro-chaos`` (``--recover`` for the self-healing sweep) or
``make chaos`` / ``make chaos-recover``; the pytest marker ``chaos``
runs the same sweep in CI tier 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.registry import GENERALIZED_ALGORITHMS, build_schedule
from ..errors import ExecutionError, FaultError, PartialFailure, ReproError
from .plan import Crash, FaultPlan, LinkFault, RetryPolicy, Straggler

__all__ = [
    "ChaosScenario",
    "ChaosResult",
    "default_recovery_policy",
    "default_scenarios",
    "run_case",
    "run_chaos",
    "summarize",
]

#: Retry policy tuned for test sweeps: fast timeouts, generous budget —
#: masks double-digit drop rates in milliseconds instead of seconds.
FAST_RETRY = RetryPolicy(max_retries=8, rto=0.01, backoff=2.0, max_rto=0.08)


@dataclass(frozen=True)
class ChaosScenario:
    """A named fault regime to sweep the algorithm suite under."""

    name: str
    plan: FaultPlan
    #: Human summary of what the scenario stresses.
    blurb: str = ""


@dataclass(frozen=True)
class ChaosResult:
    """Outcome of one (scenario, collective, algorithm, backend) case."""

    scenario: str
    collective: str
    algorithm: str
    backend: str  # "threaded" | "sim"
    outcome: str  # "ok" | "fault" | "recovered" | "unrecovered" | "FAIL"
    detail: str = ""
    retransmissions: int = 0
    elapsed: float = 0.0
    #: Why an ``engine="collapsed"`` request fell back to the
    #: materialized core (``SimResult.fallback``), ``None`` otherwise.
    #: Fault plans always block collapsing, so every sim case run with
    #: the collapsed engine records ``"fault plan present"`` here.
    fallback: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True unless the resilience contract was violated.

        ``fault`` is fine (structured, loud) when recovery is off;
        ``unrecovered`` is a violation because the caller asked the
        recovery layer to heal and it could not.
        """
        return self.outcome not in ("FAIL", "unrecovered")

    def describe(self) -> str:
        tail = f" [{self.detail}]" if self.detail else ""
        if self.fallback:
            tail += f" (collapsed fell back: {self.fallback})"
        case = f"{self.collective}/{self.algorithm}"
        return (
            f"{self.scenario:<14} {case:<36} {self.backend:<8} "
            f"{self.outcome:<6} retx={self.retransmissions:<3d}{tail}"
        )


def default_scenarios(seed: int = 0, nranks: int = 8) -> Tuple[ChaosScenario, ...]:
    """The standard sweep: maskable loss regimes plus unmaskable faults.

    Scenario seeds are derived from ``seed`` so the whole sweep is one
    reproducible unit; re-running with the same seed replays the exact
    same drops, duplicates, and delays.  With a single rank there are no
    links, so the link-targeted scenarios are omitted.
    """
    mid = nranks // 2
    scenarios = [
        ChaosScenario(
            "light_loss",
            FaultPlan(drop_rate=0.02, seed=seed, retry=FAST_RETRY),
            "2% uniform drops — the common case retries must absorb",
        ),
        ChaosScenario(
            "heavy_loss",
            FaultPlan(drop_rate=0.10, dup_rate=0.05, seed=seed + 1,
                      retry=FAST_RETRY),
            "10% drops + 5% duplicates — stresses dedup and backoff",
        ),
        ChaosScenario(
            "dup_storm",
            FaultPlan(dup_rate=0.30, seed=seed + 2, retry=FAST_RETRY),
            "30% duplicates — FIFO reordering must hold under replay",
        ),
        ChaosScenario(
            "straggler",
            FaultPlan(
                seed=seed + 4,
                stragglers=(Straggler(rank=mid, factor=20.0),),
                retry=FAST_RETRY,
            ),
            "one rank 20x slower — correctness must not depend on pace",
        ),
        ChaosScenario(
            "crash",
            FaultPlan(
                seed=seed + 5,
                crashes=(Crash(rank=min(1, nranks - 1), step=1),),
                retry=FAST_RETRY,
            ),
            "rank dies mid-schedule — expect a structured PartialFailure",
        ),
    ]
    if nranks >= 2:
        scenarios.insert(3, ChaosScenario(
            "degraded_link",
            FaultPlan(
                delay_rate=0.2,
                delay_factor=6.0,
                seed=seed + 3,
                links=(LinkFault(0, 1, drop_rate=0.15,
                                 bandwidth_factor=4.0),),
                retry=FAST_RETRY,
            ),
            "one slow, lossy link amid 20% jittery latency",
        ))
        scenarios.append(ChaosScenario(
            "dead_link",
            FaultPlan(
                seed=seed + 6,
                links=(LinkFault(0, nranks - 1, drop_rate=1.0),),
                retry=RetryPolicy(max_retries=2, rto=0.005, backoff=2.0,
                                  max_rto=0.02),
            ),
            "100% loss on one link — retries must exhaust loudly",
        ))
    return tuple(scenarios)


def default_recovery_policy(p: int):
    """The sweep's healing policy: spare-substitution with ``p`` spares.

    Spare mode (not shrink) because the ``dead_link`` scenario blames the
    sender on link ``0 → p-1`` — rank 0, the root of every rooted
    collective in the suite.  A dead bcast/scatter root is unrecoverable
    by shrinking (its data existed nowhere else) but trivially
    recoverable by substituting a spare that restores the slot's input
    from checkpoint.  ``p`` spares means no scenario can exhaust them.
    """
    from ..recovery import RecoveryPolicy

    return RecoveryPolicy(mode="spare", spares=p)


def run_case(
    collective: str,
    algorithm: str,
    plan: FaultPlan,
    *,
    scenario: str = "adhoc",
    backend: str = "threaded",
    p: int = 8,
    count: int = 64,
    timeout: float = 10.0,
    machine=None,
    recover=None,
    engine: str = "auto",
) -> ChaosResult:
    """Run one algorithm under one plan and classify the outcome.

    ``recover`` — ``None`` (fail loud, the default), a mode string, or a
    :class:`~repro.recovery.RecoveryPolicy`: unmaskable faults then go
    through the self-healing loop and classify as ``recovered`` /
    ``unrecovered`` instead of ``fault``.

    ``engine`` selects the simulation core for the ``"sim"`` backend
    (the threaded transport has no simulation engine).  Outcomes are
    identical under every engine; what changes is the recorded
    :attr:`ChaosResult.fallback` — fault plans are collapse blockers,
    so ``engine="collapsed"`` always falls back and says why.
    """
    if backend == "threaded":
        return _run_threaded(collective, algorithm, plan, scenario, p, count,
                             timeout, recover)
    if backend == "sim":
        return _run_sim(collective, algorithm, plan, scenario, p, count,
                        machine, recover, engine)
    raise ExecutionError(f"unknown chaos backend {backend!r}")


def _run_threaded(
    collective: str,
    algorithm: str,
    plan: FaultPlan,
    scenario: str,
    p: int,
    count: int,
    timeout: float,
    recover=None,
) -> ChaosResult:
    # Imported here: repro.faults must stay importable without pulling in
    # the runtime package (noise.py imports repro.faults.rng at startup).
    from ..runtime.buffers import (
        check_outputs,
        initial_buffers,
        make_inputs,
        reference_result,
    )
    from ..runtime.threaded import execute_threaded

    if recover is not None:
        return _run_threaded_recover(collective, algorithm, plan, scenario,
                                     p, count, timeout, recover)
    start = time.perf_counter()
    sched = build_schedule(collective, algorithm, p)
    inputs = make_inputs(collective, p, count)
    expected = reference_result(collective, inputs, count)
    bufs = initial_buffers(sched, inputs, count)
    transport_retx = 0

    def done(outcome: str, detail: str = "") -> ChaosResult:
        return ChaosResult(
            scenario=scenario,
            collective=collective,
            algorithm=algorithm,
            backend="threaded",
            outcome=outcome,
            detail=detail,
            retransmissions=transport_retx,
            elapsed=time.perf_counter() - start,
        )

    from ..runtime.threaded import ThreadedTransport

    transport = ThreadedTransport(sched, timeout=timeout, faults=plan)
    try:
        transport.run(bufs)
        transport_retx = sum(
            ch.retransmissions for ch in transport._channels.values()
        )
    except (FaultError, PartialFailure) as exc:
        transport_retx = sum(
            ch.retransmissions for ch in transport._channels.values()
        )
        detail = (
            "; ".join(f.diagnosis() for f in exc.faults)
            if isinstance(exc, PartialFailure)
            else exc.diagnosis()
        )
        return done("fault", detail)
    except ReproError as exc:
        return done("FAIL", f"unstructured error: {exc}")
    try:
        check_outputs(sched, bufs, expected, count)
    except ReproError as exc:
        return done("FAIL", f"silent corruption: {exc}")
    leftovers = transport.leftover_messages()
    if leftovers:
        return done("FAIL", f"{leftovers} message(s) never consumed")
    return done("ok")


def _run_threaded_recover(
    collective: str,
    algorithm: str,
    plan: FaultPlan,
    scenario: str,
    p: int,
    count: int,
    timeout: float,
    recover,
) -> ChaosResult:
    from ..errors import RecoveryError
    from ..recovery import execute_with_recovery

    start = time.perf_counter()

    def done(outcome: str, detail: str = "") -> ChaosResult:
        return ChaosResult(
            scenario=scenario,
            collective=collective,
            algorithm=algorithm,
            backend="threaded",
            outcome=outcome,
            detail=detail,
            elapsed=time.perf_counter() - start,
        )

    try:
        run = execute_with_recovery(
            collective, algorithm, p=p, count=count, recovery=recover,
            backend="threaded", timeout=timeout, faults=plan,
        )
    except RecoveryError as exc:
        return done("unrecovered", str(exc))
    except ReproError as exc:
        return done("FAIL", f"unstructured error: {exc}")
    report = run.report
    if report.nrounds == 1:
        return done("ok")
    return done(
        "recovered",
        f"rounds={report.nrounds} survivors={len(run.slots)}/{p} "
        f"ttr={report.time_to_recovery * 1e3:.1f}ms",
    )


def _run_sim(
    collective: str,
    algorithm: str,
    plan: FaultPlan,
    scenario: str,
    p: int,
    count: int,
    machine,
    recover=None,
    engine: str = "auto",
) -> ChaosResult:
    from ..simnet.machines import reference
    from ..simnet.simulate import simulate

    if machine is None:
        machine = reference(p)
    start = time.perf_counter()

    def done(outcome: str, detail: str = "", retx: int = 0,
             fallback: Optional[str] = None) -> ChaosResult:
        return ChaosResult(
            scenario=scenario,
            collective=collective,
            algorithm=algorithm,
            backend="sim",
            outcome=outcome,
            detail=detail,
            retransmissions=retx,
            elapsed=time.perf_counter() - start,
            fallback=fallback,
        )

    if recover is not None:
        from ..recovery import simulate_with_recovery

        try:
            rres = simulate_with_recovery(
                collective, algorithm, machine, count * 8,
                recovery=recover, faults=plan,
            )
        except ReproError as exc:
            return done("FAIL", f"unstructured error: {exc}")
        if not rres.recovered:
            return done(
                "unrecovered",
                f"gave up after {rres.rounds} round(s): "
                + rres.report.describe(),
            )
        if rres.rounds == 1:
            return done("ok", f"t={rres.time_us:.2f}us")
        return done(
            "recovered",
            f"rounds={rres.rounds} survivors={len(rres.survivors)}/{p} "
            f"ttr={rres.time_to_recovery_us:.1f}us "
            f"t={rres.time_us:.2f}us",
        )

    sched = build_schedule(collective, algorithm, p)
    try:
        res = simulate(sched, machine, count * 8, faults=plan, engine=engine)
    except ReproError as exc:
        return done("FAIL", f"unstructured error: {exc}")
    if res.complete:
        return done("ok", f"t={res.time * 1e6:.2f}us",
                    retx=res.retransmissions, fallback=res.fallback)
    if res.failed_ranks or res.stalled_ranks:
        return done(
            "fault",
            f"failed={list(res.failed_ranks)} "
            f"stalled={list(res.stalled_ranks)}",
            retx=res.retransmissions,
            fallback=res.fallback,
        )
    return done("FAIL", "incomplete result with no fault diagnosis",
                fallback=res.fallback)


def run_chaos(
    scenarios: Optional[Sequence[ChaosScenario]] = None,
    *,
    p: int = 8,
    count: int = 64,
    seed: int = 0,
    backends: Sequence[str] = ("threaded", "sim"),
    algorithms: Sequence[Tuple[str, str]] = GENERALIZED_ALGORITHMS,
    timeout: float = 10.0,
    recover=None,
    engine: str = "auto",
) -> List[ChaosResult]:
    """The full sweep: scenarios x Table I algorithms x backends.

    ``recover=True`` heals with :func:`default_recovery_policy`; a mode
    string or :class:`~repro.recovery.RecoveryPolicy` picks the policy
    explicitly.  ``engine`` is forwarded to every simulated case (see
    :func:`run_case`); classifications are engine-invariant.
    """
    if scenarios is None:
        scenarios = default_scenarios(seed, p)
    if recover is True:
        recover = default_recovery_policy(p)
    results: List[ChaosResult] = []
    for scen in scenarios:
        for backend in backends:
            for coll, alg in algorithms:
                results.append(
                    run_case(
                        coll,
                        alg,
                        scen.plan,
                        scenario=scen.name,
                        backend=backend,
                        p=p,
                        count=count,
                        timeout=timeout,
                        recover=recover,
                        engine=engine,
                    )
                )
    return results


def summarize(results: Sequence[ChaosResult]) -> str:
    """Human-readable sweep report; flags every contract violation.

    Besides the per-scenario roll-up, any algorithm that produced a
    non-``ok`` outcome gets its own line — so a sweep that ends with
    faults (or worse) names exactly which collective/algorithm pairs
    they came from, not just how many there were.
    """
    lines = []
    n_ok = sum(1 for r in results if r.outcome == "ok")
    n_fault = sum(1 for r in results if r.outcome == "fault")
    n_recovered = sum(1 for r in results if r.outcome == "recovered")
    n_unrecovered = sum(1 for r in results if r.outcome == "unrecovered")
    bad = [r for r in results if not r.ok]
    for r in results:
        if not r.ok:
            lines.append("VIOLATION " + r.describe())
    by_scenario: dict = {}
    for r in results:
        by_scenario.setdefault(r.scenario, []).append(r)
    for name, group in by_scenario.items():
        ok = sum(1 for r in group if r.outcome == "ok")
        fault = sum(1 for r in group if r.outcome == "fault")
        healed = sum(1 for r in group if r.outcome == "recovered")
        retx = sum(r.retransmissions for r in group)
        extra = f" {healed:3d} recovered," if healed else ""
        lines.append(
            f"{name:<14} {len(group):3d} cases: {ok:3d} ok, "
            f"{fault:3d} structured fault(s),{extra} "
            f"{len([r for r in group if not r.ok]):2d} violation(s), "
            f"{retx} retransmission(s)"
        )
    by_algorithm: dict = {}
    for r in results:
        if r.outcome != "ok":
            key = f"{r.collective}/{r.algorithm}"
            by_algorithm.setdefault(key, []).append(r)
    if by_algorithm:
        lines.append("failures by algorithm:")
        for case in sorted(by_algorithm):
            group = by_algorithm[case]
            counts = {}
            for r in group:
                counts[r.outcome] = counts.get(r.outcome, 0) + 1
            breakdown = ", ".join(
                f"{counts[o]} {o}" for o in
                ("fault", "recovered", "unrecovered", "FAIL") if o in counts
            )
            scens = sorted({r.scenario for r in group})
            lines.append(
                f"  {case:<36} {breakdown}  "
                f"[{', '.join(scens)}]"
            )
    tail = ""
    if n_recovered or n_unrecovered:
        tail = (f", {n_recovered} recovered, "
                f"{n_unrecovered} unrecovered")
    lines.append(
        f"total: {len(results)} cases, {n_ok} ok, {n_fault} structured "
        f"fault(s){tail}, {len(bad)} contract violation(s)"
    )
    return "\n".join(lines)
