"""Counter-based random draws shared by the noise and fault models.

Both :class:`~repro.simnet.noise.NoiseModel` and
:class:`~repro.faults.plan.FaultPlan` need *random-access* randomness: the
simulator and the threaded transport consult them in nondeterministic
order (whichever rank gets scheduled first asks first), yet the answer for
a given (seed, counters) tuple must never depend on who asked when.  The
construction here hashes the counters into a fresh NumPy ``Generator`` per
draw — no shared stream, no ordering sensitivity, bit-identical across
processes and platforms.

For a single counter the mixing is kept exactly equal to the historical
``NoiseModel`` construction so existing seeded simulations reproduce the
same factor sequences.
"""

from __future__ import annotations

import numpy as np

__all__ = ["derive_rng", "uniform", "bernoulli"]

_KNUTH = 2654435761  # Knuth's multiplicative hash constant


def derive_rng(seed: int, *counters: int) -> np.random.Generator:
    """A fresh ``Generator`` keyed by ``(seed, *counters)``.

    Deterministic and order-free: two calls with equal arguments return
    generators producing identical streams, regardless of call order or
    thread.  Not cryptographic — just well-spread for simulation use.
    """
    mix = seed << 32
    for i, c in enumerate(counters):
        mix ^= ((c * _KNUTH) % 2**31) << (31 * i)
    return np.random.default_rng(mix)


def uniform(seed: int, *counters: int) -> float:
    """One deterministic U[0, 1) draw keyed by ``(seed, *counters)``."""
    return float(derive_rng(seed, *counters).random())


def bernoulli(rate: float, seed: int, *counters: int) -> bool:
    """One deterministic coin flip with success probability ``rate``."""
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    return uniform(seed, *counters) < rate
