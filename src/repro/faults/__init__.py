"""Deterministic fault injection for both execution backends.

Declare *what goes wrong* once — a seeded :class:`FaultPlan` of message
drops, duplicates, delays, degraded links, stragglers, and rank crashes —
and hand the same object to the network simulator
(:func:`repro.simnet.simulate.simulate`) or the threaded transport
(:class:`repro.runtime.threaded.ThreadedTransport`).  Every decision is a
pure function of the seed, so runs are exactly reproducible.

The chaos harness lives in :mod:`repro.faults.chaos` (imported lazily to
keep this package free of backend dependencies).
"""

from .channel import (
    POLL_SLICE,
    ChannelAborted,
    ChannelBroken,
    ChannelFailure,
    ChannelMonitor,
    ChannelTimeout,
    LossyChannel,
)
from .plan import (
    BackgroundJob,
    ContentionModel,
    Crash,
    FaultPhase,
    FaultPlan,
    LinkFault,
    PhasedFaultPlan,
    RetryPolicy,
    Straggler,
    combine_plans,
)
from .rng import derive_rng

__all__ = [
    "FaultPlan",
    "RetryPolicy",
    "LinkFault",
    "Straggler",
    "Crash",
    "FaultPhase",
    "PhasedFaultPlan",
    "BackgroundJob",
    "ContentionModel",
    "combine_plans",
    "LossyChannel",
    "ChannelMonitor",
    "ChannelFailure",
    "ChannelTimeout",
    "ChannelAborted",
    "ChannelBroken",
    "POLL_SLICE",
    "derive_rng",
]
