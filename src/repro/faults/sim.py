"""Static fault analysis for the discrete-event simulator.

Schedules are static and every :class:`~repro.faults.plan.FaultPlan`
decision is a pure function of (link, sequence number, attempt) — so
*which* messages survive, which ranks crash, and which ranks end up
blocked forever on a dead peer can all be computed before the simulation
runs.  :func:`analyze` does exactly that:

1. Messages whose every transmission attempt is dropped (``attempts_needed
   is None``) are *failed*.
2. A crashed rank posts no operations at or after its crash step.
3. Fixpoint: a message is *doomed* if it failed or either endpoint never
   posts its half; a rank that waits on a doomed message *stalls* at that
   step (it posts the step's operations, then blocks forever), so its
   later operations are unposted too — which can doom further messages.

The simulator then runs only the live part of the schedule: doomed
transfers are skipped, stalled/crashed ranks record infinite completion
times, and the engine drains cleanly — a *partial-completion result*
instead of the blanket deadlock ``MachineError`` the engine would
otherwise raise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.schedule import RecvOp, Schedule, SendOp
from ..errors import MachineError
from .plan import FaultPlan

__all__ = ["MsgMeta", "FaultStatics", "match_messages", "analyze"]


@dataclass(frozen=True)
class MsgMeta:
    """Where one matched message sits in the schedule."""

    index: int       # position in the simulator's message list
    src: int
    dst: int
    seq: int         # per-(src, dst)-link FIFO sequence number
    send_step: int   # step index of the SendOp in src's program
    recv_step: int   # step index of the RecvOp in dst's program
    blocks: Tuple[int, ...] = ()   # block ids the send carries
    reduce: bool = False           # whether the matched recv reduces


def match_messages(schedule: Schedule) -> List[MsgMeta]:
    """Match every send to its receive (FIFO per channel), statically.

    The matching rule is the one every executor implements — per-(src,
    dst) FIFO order — so the returned metas describe exactly the messages
    the simulator and the threaded transport will exchange.  Raises
    :class:`~repro.errors.MachineError` on an unmatched send or receive.
    """
    pending_recvs: Dict[Tuple[int, int], List[Tuple[int, RecvOp]]] = {}
    for prog in schedule.programs:
        for step_idx, op in prog.iter_ops():
            if isinstance(op, RecvOp):
                pending_recvs.setdefault((op.peer, prog.rank), []).append(
                    (step_idx, op)
                )
    cursor: Dict[Tuple[int, int], int] = {}
    metas: List[MsgMeta] = []
    for prog in schedule.programs:
        for step_idx, op in prog.iter_ops():
            if isinstance(op, SendOp):
                key = (prog.rank, op.peer)
                idx = cursor.get(key, 0)
                rlist = pending_recvs.get(key, [])
                if idx >= len(rlist):
                    raise MachineError(
                        f"{schedule.describe()}: unmatched send "
                        f"{prog.rank}->{op.peer}"
                    )
                cursor[key] = idx + 1
                recv_step, rop = rlist[idx]
                metas.append(
                    MsgMeta(
                        index=len(metas),
                        src=prog.rank,
                        dst=op.peer,
                        seq=idx,
                        send_step=step_idx,
                        recv_step=recv_step,
                        blocks=op.blocks,
                        reduce=rop.reduce,
                    )
                )
    for key, rlist in pending_recvs.items():
        if cursor.get(key, 0) != len(rlist):
            raise MachineError(
                f"{schedule.describe()}: unmatched receive on channel {key}"
            )
    return metas


@dataclass(frozen=True)
class FaultStatics:
    """Everything the simulator needs to run a faulty schedule cleanly."""

    failed: FrozenSet[int]          # message indices with retries exhausted
    doomed: FrozenSet[int]          # failed or never fully posted
    post_limit: Dict[int, int]      # rank -> first step NOT posted
    stall_step: Dict[int, int]      # rank -> step it blocks at forever
    crashed: FrozenSet[int]         # ranks taken down by a Crash fault

    @property
    def dead_ranks(self) -> FrozenSet[int]:
        """Ranks that never complete (crashed or stalled)."""
        return self.crashed | frozenset(self.stall_step)

    def completes(self, rank: int, nsteps: int) -> bool:
        return (
            rank not in self.crashed
            and rank not in self.stall_step
            and self.post_limit.get(rank, nsteps) >= nsteps
        )


def analyze(
    schedule: Schedule, plan: FaultPlan, metas: Sequence[MsgMeta]
) -> Optional[FaultStatics]:
    """Pre-compute the fate of every message and rank under ``plan``.

    Returns ``None`` when the plan cannot change completion (no loss that
    exhausts retries and no crashes) — the simulator then only applies
    latency/bandwidth perturbations on the normal path.
    """
    p = schedule.nranks
    nsteps = [len(schedule.programs[r].steps) for r in range(p)]

    failed = set()
    if plan.has_loss:
        for m in metas:
            if plan.attempts_needed(m.src, m.dst, m.seq) is None:
                failed.add(m.index)

    crashed = set()
    post_limit = dict(enumerate(nsteps))
    for r in range(p):
        c = plan.crash_step(r)
        if c is not None and c < nsteps[r]:
            crashed.add(r)
            post_limit[r] = c

    if not failed and not crashed:
        return None

    # waits[r][s]: messages rank r's step s waitall blocks on (its own
    # sends' completions and its receives' deliveries).
    waits: List[List[List[MsgMeta]]] = [
        [[] for _ in range(nsteps[r])] for r in range(p)
    ]
    for m in metas:
        waits[m.src][m.send_step].append(m)
        waits[m.dst][m.recv_step].append(m)

    stall_step: Dict[int, int] = {}
    changed = True
    while changed:
        changed = False
        doomed = set(failed)
        for m in metas:
            if m.send_step >= post_limit[m.src] or m.recv_step >= post_limit[m.dst]:
                doomed.add(m.index)
        for r in range(p):
            for s in range(post_limit[r]):
                if any(m.index in doomed for m in waits[r][s]):
                    if post_limit[r] != s + 1 or stall_step.get(r) != s:
                        post_limit[r] = s + 1
                        stall_step[r] = s
                        crashed.discard(r)  # it blocks before it can crash
                        changed = True
                    break

    doomed = set(failed)
    for m in metas:
        if m.send_step >= post_limit[m.src] or m.recv_step >= post_limit[m.dst]:
            doomed.add(m.index)

    return FaultStatics(
        failed=frozenset(failed),
        doomed=frozenset(doomed),
        post_limit=post_limit,
        stall_step=stall_step,
        crashed=frozenset(crashed),
    )
