"""Analytical models for ring and k-ring (paper eqs. (8)–(14)).

The paper's homogeneous k-ring model (eq. (12)) collapses to the classic
ring — ``(p-1)·T_i`` regardless of ``k`` — which is exactly why the
analytic intuition "shows no clear benefit" (§V-D) while the measured
Frontier results do: the benefit appears only once intra-group rounds run
on the faster intranode links.  :func:`kring_heterogeneous_time` adds the
two-link-class refinement that captures it, and
:func:`kring_inter_group_data` / :func:`ring_inter_group_data` transcribe
the traffic formulas (13)/(14).
"""

from __future__ import annotations

from ..errors import ModelError
from .params import ModelParams

__all__ = [
    "ring_round_time",
    "ring_time",
    "ring_asymptotic_time",
    "kring_time",
    "kring_heterogeneous_time",
    "kring_inter_group_data",
    "ring_inter_group_data",
]


def _check(n: float, p: int) -> None:
    if p < 1:
        raise ModelError(f"p must be >= 1, got {p}")
    if n < 0:
        raise ModelError(f"n must be >= 0, got {n}")


def ring_round_time(
    n: float, p: int, params: ModelParams, *, collective: str = "allgather"
) -> float:
    """Eq. (9): single-round cost ``α + β·n/p`` (+ ``γ·n/p`` for allreduce)."""
    _check(n, p)
    t = params.alpha + params.beta * n / p
    if collective == "allreduce":
        t += params.gamma * n / p
    elif collective not in ("allgather", "bcast"):
        raise ModelError(f"eq. (9) has no {collective!r} case")
    return t


def ring_time(
    n: float, p: int, params: ModelParams, *, collective: str = "allgather"
) -> float:
    """Eq. (8): ``(p-1) · T_i``."""
    _check(n, p)
    return (p - 1) * ring_round_time(n, p, params, collective=collective)


def ring_asymptotic_time(
    n: float, params: ModelParams, *, collective: str = "allgather"
) -> float:
    """Eq. (10): the large-message limit ``β·n`` (+ ``γ·n``), independent
    of latency and process count."""
    if n < 0:
        raise ModelError(f"n must be >= 0, got {n}")
    t = params.beta * n
    if collective == "allreduce":
        t += params.gamma * n
    elif collective not in ("allgather", "bcast"):
        raise ModelError(f"eq. (10) has no {collective!r} case")
    return t


def _groups(p: int, k: int) -> int:
    if k < 1:
        raise ModelError(f"k must be >= 1, got {k}")
    return -(-p // k)  # ceil division


def kring_time(
    n: float, p: int, k: int, params: ModelParams, *, collective: str = "allgather"
) -> float:
    """Eq. (11)/(12): ``g(k-1)`` intra rounds + ``(g-1)`` inter rounds with
    a single link class — algebraically ``(p-1)·T_i`` when ``k | p``, the
    paper's point that the homogeneous model predicts no k-ring benefit."""
    _check(n, p)
    g = _groups(p, k)
    t_i = ring_round_time(n, p, params, collective=collective)
    return g * (k - 1) * t_i + (g - 1) * t_i


def kring_heterogeneous_time(
    n: float,
    p: int,
    k: int,
    intra: ModelParams,
    inter: ModelParams,
    *,
    collective: str = "allgather",
) -> float:
    """Two-link-class refinement of eq. (11): intra rounds priced on the
    intranode link, inter rounds on the NIC.

    ``T = g·(k-1)·T_i(intra) + (g-1)·T_i(inter)`` — this is the model that
    explains the measured k-ring win on Frontier (k = ppn aligns group
    boundaries with node boundaries) and its absence on Polaris (where
    ``α_intra ≈ α_inter`` leaves rounds latency-equal).
    """
    _check(n, p)
    g = _groups(p, k)
    t_intra = ring_round_time(n, p, intra, collective=collective)
    t_inter = ring_round_time(n, p, inter, collective=collective)
    return g * (k - 1) * t_intra + (g - 1) * t_inter


def kring_inter_group_data(n: float, p: int, k: int) -> float:
    """Eq. (13): bytes a group sends+receives across group boundaries,
    ``2n(p-k)/p``."""
    _check(n, p)
    if k < 1 or k > p:
        raise ModelError(f"k must be in [1, p], got {k}")
    return 2.0 * n * (p - k) / p


def ring_inter_group_data(n: float, p: int) -> float:
    """Eq. (14): classic ring inter-group traffic, ``2n(p-1)/p`` — the
    ``k = 1`` evaluation of eq. (13)."""
    return kring_inter_group_data(n, p, 1)
