"""Least-squares fitting of (α, β, γ) from measured latencies.

Every model in this package is *linear in its parameters*: for a fixed
algorithm, process count, and radix, the predicted time is
``a(n)·α + b(n)·β + c(n)·γ`` with coefficients depending only on the
geometry.  Given measured (or simulated) latencies over a size sweep, the
constants fall out of an ordinary least-squares solve — the standard way
such models are calibrated against real systems, and how the model-vs-
simulator benches recover effective α/β from simulator output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from ..errors import ModelError
from .params import ModelParams

__all__ = ["FitResult", "fit_params", "fit_ptp"]

CoefFn = Callable[[float], Tuple[float, float, float]]


@dataclass(frozen=True)
class FitResult:
    """Outcome of a model fit."""

    params: ModelParams
    residual: float        # RMS residual (seconds)
    relative_error: float  # RMS residual / RMS measurement

    def describe(self) -> str:
        a, b, g = self.params.alpha, self.params.beta, self.params.gamma
        return (
            f"α={a * 1e6:.3f}µs  β={b * 1e9:.4f}ns/B  γ={g * 1e9:.4f}ns/B  "
            f"(rel. err {self.relative_error * 100:.1f}%)"
        )


def fit_params(
    sizes: Sequence[float],
    times: Sequence[float],
    coef_fn: CoefFn,
    *,
    fit_gamma: bool = True,
) -> FitResult:
    """Solve ``times ≈ A·[α, β, γ]`` in the least-squares sense.

    ``coef_fn(n)`` returns the (a, b, c) coefficients of one measurement;
    e.g. for a binomial bcast on ``p`` ranks it is
    ``(log2 p, n·log2 p, 0)``.  Negative fitted constants are clamped to
    zero (they arise only when a term is absent from the data, e.g. γ for
    a pure-movement collective).
    """
    if len(sizes) != len(times):
        raise ModelError(
            f"{len(sizes)} sizes but {len(times)} measurements"
        )
    if len(sizes) < 2:
        raise ModelError("need at least two measurements to fit")
    rows = [coef_fn(float(n)) for n in sizes]
    A = np.asarray(rows, dtype=np.float64)
    y = np.asarray(times, dtype=np.float64)
    if not fit_gamma:
        A = A[:, :2]
    sol, *_ = np.linalg.lstsq(A, y, rcond=None)
    sol = np.clip(sol, 0.0, None)
    pred = A @ sol
    resid = float(np.sqrt(np.mean((pred - y) ** 2)))
    scale = float(np.sqrt(np.mean(y**2))) or 1.0
    alpha, beta = float(sol[0]), float(sol[1])
    gamma = float(sol[2]) if fit_gamma and A.shape[1] > 2 else 0.0
    return FitResult(
        params=ModelParams(alpha=alpha, beta=beta, gamma=gamma),
        residual=resid,
        relative_error=resid / scale,
    )


def fit_ptp(sizes: Sequence[float], times: Sequence[float]) -> FitResult:
    """Fit a plain point-to-point ping latency curve ``α + β·n``.

    The standard first step of calibrating the model to a machine — and a
    sanity check that the simulator's transfers really are affine in size.
    """
    return fit_params(sizes, times, lambda n: (1.0, n, 0.0), fit_gamma=False)
