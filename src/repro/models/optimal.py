"""Model-predicted optimal radices (the paper's §III-D/§IV-D intuition).

The paper uses its analytical models to *intuit* how the optimal radix
moves with message size — large k for latency-bound sizes, small k for
bandwidth-bound ones — then checks the intuition empirically.  This module
provides that prediction: grid-minimize any model over the feasible radix
range, and report the full profile so benches can overlay model-optimal
against simulator-optimal k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..errors import ModelError
from .params import ModelParams

__all__ = ["RadixProfile", "optimal_radix", "radix_profile"]

ModelFn = Callable[[float, int, int, ModelParams], float]


@dataclass(frozen=True)
class RadixProfile:
    """Model cost as a function of radix, for one (n, p)."""

    n: float
    p: int
    costs: Tuple[Tuple[int, float], ...]  # (k, seconds), ascending k

    @property
    def best_k(self) -> int:
        return min(self.costs, key=lambda kv: kv[1])[0]

    @property
    def best_time(self) -> float:
        return min(t for _, t in self.costs)

    def cost_of(self, k: int) -> float:
        for kk, t in self.costs:
            if kk == k:
                return t
        raise ModelError(f"radix {k} not in profile")


def radix_profile(
    model: ModelFn,
    n: float,
    p: int,
    params: ModelParams,
    *,
    ks: Sequence[int] = (),
    min_k: int = 2,
) -> RadixProfile:
    """Evaluate ``model`` over a radix grid.

    With no explicit ``ks``, the grid is every power of two from ``min_k``
    to ``p`` plus ``p`` itself and the classic near-optimal radices 3 and
    5 — the same grid the empirical sweeps use, so profiles compare
    one-to-one.
    """
    if p < 1:
        raise ModelError(f"p must be >= 1, got {p}")
    if not ks:
        grid = set()
        k = min_k
        while k < p:
            grid.add(k)
            k *= 2
        grid.add(max(p, min_k))
        for extra in (3, 5):
            if min_k <= extra <= p:
                grid.add(extra)
        ks = sorted(grid)
    costs = tuple((k, model(n, p, k, params)) for k in ks)
    return RadixProfile(n=n, p=p, costs=costs)


def optimal_radix(
    model: ModelFn,
    n: float,
    p: int,
    params: ModelParams,
    *,
    ks: Sequence[int] = (),
    min_k: int = 2,
) -> int:
    """The radix minimizing ``model`` over the grid (ties → smallest k,
    matching the paper's preference for the cheaper fan-out when costs are
    within noise)."""
    profile = radix_profile(model, n, p, params, ks=ks, min_k=min_k)
    best = min(t for _, t in profile.costs)
    for k, t in profile.costs:
        if t == best:
            return k
    raise ModelError("unreachable")


def optimal_radix_by_size(
    model: ModelFn,
    sizes: Sequence[float],
    p: int,
    params: ModelParams,
    *,
    ks: Sequence[int] = (),
    min_k: int = 2,
) -> Dict[float, int]:
    """Optimal radix per message size — the model-side version of the
    paper's Fig. 8 sweeps."""
    return {
        n: optimal_radix(model, n, p, params, ks=ks, min_k=min_k)
        for n in sizes
    }
