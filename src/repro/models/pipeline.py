"""Analytical model for the pipelined chain broadcast.

Classic pipeline arithmetic: with ``S`` segments over a ``p``-rank chain,
the last segment leaves the root at step ``S - 1`` and needs ``p - 1``
more hops, each costing ``α + β·n/S``:

    T(n, p, S) = (S + p - 2) · (α + β·n/S)

Differentiating gives the optimum ``S* = √(n·β·(p-2)/α)`` implemented in
:func:`repro.core.pipeline.optimal_segments`; for ``n → ∞`` the chain
approaches the bandwidth bound ``β·n`` like the ring (eq. (10)).
"""

from __future__ import annotations

from ..errors import ModelError
from .params import ModelParams

__all__ = ["chain_bcast_time"]


def chain_bcast_time(n: float, p: int, segments: int, params: ModelParams) -> float:
    """``(S + p - 2)·(α + β·n/S)`` — the segmented chain broadcast."""
    if p < 1:
        raise ModelError(f"p must be >= 1, got {p}")
    if segments < 1:
        raise ModelError(f"segments must be >= 1, got {segments}")
    if n < 0:
        raise ModelError(f"n must be >= 0, got {n}")
    if p == 1:
        return 0.0
    return (segments + p - 2) * (params.alpha + params.beta * n / segments)
