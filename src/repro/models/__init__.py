"""Analytical cost models — paper equations (1) through (14).

Besides the per-kernel modules, this package exposes
:func:`model_time`, a uniform dispatcher mirroring
:func:`repro.core.build_schedule`'s (collective, algorithm) naming, so
benches can ask "what does the paper's model predict for this exact
configuration?" in one call.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ModelError
from .alltoall import bruck_alltoall_time, pairwise_alltoall_time
from .bruck import bruck_allgather_time, dissemination_barrier_time
from .fit import FitResult, fit_params, fit_ptp
from .knomial import (
    binomial_allgather_time,
    binomial_allreduce_time,
    binomial_bcast_time,
    binomial_gather_time,
    binomial_reduce_time,
    knomial_allgather_time,
    knomial_allreduce_time,
    knomial_bcast_time,
    knomial_gather_time,
    knomial_reduce_time,
)
from .optimal import RadixProfile, optimal_radix, optimal_radix_by_size, radix_profile
from .params import ModelParams
from .pipeline import chain_bcast_time
from .recursive import (
    recursive_doubling_allgather_time,
    recursive_doubling_allreduce_time,
    recursive_doubling_bcast_time,
    recursive_multiplying_allgather_time,
    recursive_multiplying_allreduce_time,
    recursive_multiplying_bcast_time,
    recursive_multiplying_round_time,
)
from .ring import (
    kring_heterogeneous_time,
    kring_inter_group_data,
    kring_time,
    ring_asymptotic_time,
    ring_inter_group_data,
    ring_round_time,
    ring_time,
)

__all__ = [
    "ModelParams",
    "model_time",
    "optimal_radix",
    "optimal_radix_by_size",
    "radix_profile",
    "RadixProfile",
    "fit_params",
    "fit_ptp",
    "FitResult",
    "knomial_bcast_time",
    "knomial_reduce_time",
    "knomial_gather_time",
    "knomial_allgather_time",
    "knomial_allreduce_time",
    "binomial_bcast_time",
    "binomial_reduce_time",
    "binomial_gather_time",
    "binomial_allgather_time",
    "binomial_allreduce_time",
    "recursive_multiplying_allgather_time",
    "recursive_multiplying_allreduce_time",
    "recursive_multiplying_bcast_time",
    "recursive_multiplying_round_time",
    "recursive_doubling_allgather_time",
    "recursive_doubling_allreduce_time",
    "recursive_doubling_bcast_time",
    "ring_round_time",
    "ring_time",
    "ring_asymptotic_time",
    "kring_time",
    "kring_heterogeneous_time",
    "kring_inter_group_data",
    "ring_inter_group_data",
    "bruck_allgather_time",
    "dissemination_barrier_time",
    "chain_bcast_time",
    "pairwise_alltoall_time",
    "bruck_alltoall_time",
]


_DISPATCH = {
    ("bcast", "binomial"): lambda n, p, k, pr: binomial_bcast_time(n, p, pr),
    ("bcast", "knomial"): knomial_bcast_time,
    ("bcast", "recursive_doubling"): lambda n, p, k, pr: recursive_doubling_bcast_time(n, p, pr),
    ("bcast", "recursive_multiplying"): recursive_multiplying_bcast_time,
    ("bcast", "ring"): lambda n, p, k, pr: ring_time(n, p, pr, collective="bcast"),
    ("bcast", "kring"): lambda n, p, k, pr: kring_time(n, p, k, pr, collective="bcast"),
    ("reduce", "binomial"): lambda n, p, k, pr: binomial_reduce_time(n, p, pr),
    ("reduce", "knomial"): knomial_reduce_time,
    ("gather", "binomial"): lambda n, p, k, pr: binomial_gather_time(n, p, pr),
    ("gather", "knomial"): knomial_gather_time,
    ("allgather", "binomial"): lambda n, p, k, pr: binomial_allgather_time(n, p, pr),
    ("allgather", "knomial"): knomial_allgather_time,
    ("allgather", "recursive_doubling"): lambda n, p, k, pr: recursive_doubling_allgather_time(n, p, pr),
    ("allgather", "recursive_multiplying"): recursive_multiplying_allgather_time,
    ("allgather", "ring"): lambda n, p, k, pr: ring_time(n, p, pr, collective="allgather"),
    ("allgather", "kring"): lambda n, p, k, pr: kring_time(n, p, k, pr, collective="allgather"),
    ("allreduce", "binomial"): lambda n, p, k, pr: binomial_allreduce_time(n, p, pr),
    ("allreduce", "knomial"): knomial_allreduce_time,
    ("allreduce", "recursive_doubling"): lambda n, p, k, pr: recursive_doubling_allreduce_time(n, p, pr),
    ("allreduce", "recursive_multiplying"): recursive_multiplying_allreduce_time,
    ("allreduce", "ring"): lambda n, p, k, pr: ring_time(n, p, pr, collective="allreduce"),
    ("allreduce", "kring"): lambda n, p, k, pr: kring_time(n, p, k, pr, collective="allreduce"),
    ("allgather", "bruck"): bruck_allgather_time,
    ("barrier", "dissemination"): lambda n, p, k, pr: dissemination_barrier_time(p, 2, pr),
    ("barrier", "k_dissemination"): lambda n, p, k, pr: dissemination_barrier_time(p, k, pr),
    ("bcast", "pipelined_chain"): chain_bcast_time,
    ("alltoall", "pairwise"): lambda n, p, k, pr: pairwise_alltoall_time(n, p, pr),
    ("alltoall", "bruck"): bruck_alltoall_time,
}


def model_time(
    collective: str,
    algorithm: str,
    n: float,
    p: int,
    params: ModelParams,
    *,
    k: Optional[int] = None,
) -> float:
    """Evaluate the paper's analytical model for a (collective, algorithm).

    Radix-free algorithms ignore ``k``; generalized ones require it.

    >>> from repro.models import ModelParams, model_time
    >>> pr = ModelParams(alpha=1e-6, beta=1e-9)
    >>> model_time("bcast", "binomial", 8, 16, pr) > 0
    True
    """
    try:
        fn = _DISPATCH[(collective, algorithm)]
    except KeyError:
        raise ModelError(
            f"no analytical model for {collective}/{algorithm}"
        ) from None
    generalized = algorithm in (
        "knomial", "recursive_multiplying", "kring", "bruck",
        "k_dissemination", "pipelined_chain",
    )
    if generalized and k is None:
        raise ModelError(f"{collective}/{algorithm} model requires a radix k")
    return fn(n, p, k, params)
