"""Analytical models for the Bruck-family extensions.

The k-port Bruck allgather shares recursive multiplying's telescoped
bandwidth (each rank still lands exactly ``n(p-1)/p`` bytes) with the same
``⌈log_k p⌉`` latency rounds, but — because the exchange truncates rather
than folds — without the two extra fold/unfold latencies on non-smooth
process counts.  The dissemination barrier is a pure-latency collective.
"""

from __future__ import annotations

from ..core.primitives import ilog
from ..errors import ModelError
from .params import ModelParams

__all__ = ["bruck_allgather_time", "dissemination_barrier_time"]


def _check(p: int, k: int) -> None:
    if p < 1:
        raise ModelError(f"p must be >= 1, got {p}")
    if k < 2:
        raise ModelError(f"k must be >= 2, got {k}")


def bruck_allgather_time(n: float, p: int, k: int, params: ModelParams) -> float:
    """``⌈log_k p⌉·α + β·n·(p-1)/p`` for any ``p`` (no fold penalty)."""
    _check(p, k)
    if n < 0:
        raise ModelError(f"n must be >= 0, got {n}")
    if p == 1:
        return 0.0
    return params.alpha * ilog(k, p) + params.beta * n * (p - 1) / p


def dissemination_barrier_time(p: int, k: int, params: ModelParams) -> float:
    """``⌈log_k p⌉·α`` — rounds of zero-byte signals."""
    _check(p, k)
    if p == 1:
        return 0.0
    return params.alpha * ilog(k, p)
