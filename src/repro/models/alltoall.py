"""Analytical models for the all-to-all extensions.

Size convention matches the rest of the package: ``n`` is the total block
space (``p²`` blocks), so each rank owns ``n/p`` bytes of send data and
each pair exchanges ``n/p²``.

* Pairwise: every block moves exactly once —
  ``T = (p-1)·(α + β·n/p²)``.
* K-port Bruck: ``⌈log_k p⌉`` rounds; each round a rank forwards the
  ``(k-1)/k`` fraction of its ``n/p`` bytes whose displacement digit is
  nonzero — ``T = ⌈log_k p⌉·(α + β·(k-1)/k·n/p)``.

The crossover between them (latency-bound small messages → Bruck,
bandwidth-bound large → pairwise) is the all-to-all analogue of the
paper's radix trade-offs and is measured by
``benchmarks/bench_alltoall_crossover.py``.
"""

from __future__ import annotations

from ..core.primitives import ilog
from ..errors import ModelError
from .params import ModelParams

__all__ = ["pairwise_alltoall_time", "bruck_alltoall_time"]


def pairwise_alltoall_time(n: float, p: int, params: ModelParams) -> float:
    """``(p-1)·(α + β·n/p²)`` — one direct exchange per peer."""
    if p < 1:
        raise ModelError(f"p must be >= 1, got {p}")
    if n < 0:
        raise ModelError(f"n must be >= 0, got {n}")
    if p == 1:
        return 0.0
    return (p - 1) * (params.alpha + params.beta * n / (p * p))


def bruck_alltoall_time(n: float, p: int, k: int, params: ModelParams) -> float:
    """``⌈log_k p⌉·(α + β·(k-1)/k·n/p)`` — digit routing with aggregation."""
    if p < 1:
        raise ModelError(f"p must be >= 1, got {p}")
    if k < 2:
        raise ModelError(f"k must be >= 2, got {k}")
    if n < 0:
        raise ModelError(f"n must be >= 0, got {n}")
    if p == 1:
        return 0.0
    L = ilog(k, p)
    return L * (params.alpha + params.beta * (k - 1) / k * n / p)
