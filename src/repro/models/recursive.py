"""Analytical models for recursive doubling/multiplying (paper eqs. (4)–(7))."""

from __future__ import annotations

from typing import List

from ..core.primitives import ilog
from ..errors import ModelError
from .params import ModelParams

__all__ = [
    "recursive_multiplying_allgather_time",
    "recursive_multiplying_allreduce_time",
    "recursive_multiplying_bcast_time",
    "recursive_multiplying_round_time",
    "recursive_doubling_allgather_time",
    "recursive_doubling_allreduce_time",
    "recursive_doubling_bcast_time",
]


def _check(n: float, p: int, k: int) -> None:
    if p < 1:
        raise ModelError(f"p must be >= 1, got {p}")
    if n < 0:
        raise ModelError(f"n must be >= 0, got {n}")
    if k < 2:
        raise ModelError(f"k must be >= 2, got {k}")


def recursive_multiplying_allgather_time(
    n: float, p: int, k: int, params: ModelParams
) -> float:
    """Eq. (6) allgather/bcast: ``α·⌈log_k p⌉ + β·n·(p-1)/p``.

    The bandwidth term telescopes to the optimum regardless of radix; the
    radix only trades rounds (α) against per-round fan-out.
    """
    _check(n, p, k)
    if p == 1:
        return 0.0
    return params.alpha * ilog(k, p) + params.beta * n * (p - 1) / p


def recursive_multiplying_bcast_time(
    n: float, p: int, k: int, params: ModelParams
) -> float:
    """Eq. (6) treats bcast identically to allgather (the scatter phase is
    folded into the same α/β budget)."""
    return recursive_multiplying_allgather_time(n, p, k, params)


def recursive_multiplying_allreduce_time(
    n: float, p: int, k: int, params: ModelParams
) -> float:
    """Eq. (6) allreduce: ``⌈log_k p⌉ · (α + (β+γ)·(k-1)·n)``.

    Each round every process exchanges full vectors with ``k-1`` partners
    and reduces their contributions.
    """
    _check(n, p, k)
    if p == 1:
        return 0.0
    L = ilog(k, p)
    return L * (params.alpha + (params.beta + params.gamma) * (k - 1) * n)


def recursive_multiplying_round_time(
    n: float, p: int, k: int, i: int, params: ModelParams, *, collective: str
) -> float:
    """Eq. (7): cost of round ``i`` (1-indexed).

    * allgather/bcast: ``α + β·n·(k-1)·k^(i-1)/p`` — geometric data growth;
    * allreduce: ``α + (β+γ)·(k-1)·n`` — full vectors every round.
    """
    _check(n, p, k)
    if i < 1 or i > ilog(k, max(p, 2)):
        raise ModelError(f"round {i} out of range for p={p}, k={k}")
    if collective in ("allgather", "bcast"):
        return params.alpha + params.beta * n * (k - 1) * k ** (i - 1) / p
    if collective == "allreduce":
        return params.alpha + (params.beta + params.gamma) * (k - 1) * n
    raise ModelError(f"eq. (7) has no {collective!r} case")


# ----------------------------------------------------------------------
# Recursive doubling (eq. (4)/(5)) — exact k = 2 evaluations
# ----------------------------------------------------------------------

def recursive_doubling_allgather_time(n: float, p: int, params: ModelParams) -> float:
    """Eq. (4) allgather/bcast: ``α·log2 p + β·n·(p-1)/p``."""
    return recursive_multiplying_allgather_time(n, p, 2, params)


def recursive_doubling_bcast_time(n: float, p: int, params: ModelParams) -> float:
    """Eq. (4): bcast is modeled identically to allgather."""
    return recursive_multiplying_bcast_time(n, p, 2, params)


def recursive_doubling_allreduce_time(n: float, p: int, params: ModelParams) -> float:
    """Eq. (4) allreduce: ``log2(p) · (α + (β+γ)·n)``."""
    return recursive_multiplying_allreduce_time(n, p, 2, params)
