"""Parameters of the (α, β, γ) cost model (paper §III-B).

The paper models a point-to-point message of ``n`` bytes as
``τ = α + β·n`` — startup latency plus per-byte cost — and charges
reductions ``γ`` per byte.  All analytical models in this package take a
:class:`ModelParams` carrying those three constants (seconds, seconds per
byte, seconds per byte).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError
from ..simnet.machine import MachineSpec

__all__ = ["ModelParams"]


@dataclass(frozen=True)
class ModelParams:
    """The (α, β, γ) constants of the paper's cost model."""

    alpha: float
    beta: float
    gamma: float = 0.0

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma"):
            if getattr(self, name) < 0:
                raise ModelError(f"{name} must be >= 0")

    def ptp(self, n: float) -> float:
        """Point-to-point message cost ``α + β·n``."""
        return self.alpha + self.beta * n

    @classmethod
    def from_machine(cls, machine: MachineSpec, *, link: str = "inter") -> "ModelParams":
        """Extract model constants from a machine spec.

        ``link`` selects which link class the single-link model should
        describe (``"inter"`` or ``"intra"``); the paper's models are
        link-homogeneous, so pick the class the algorithm is bound by.
        """
        if link == "inter":
            return cls(
                alpha=machine.alpha_inter,
                beta=machine.beta_inter,
                gamma=machine.gamma,
            )
        if link == "intra":
            return cls(
                alpha=machine.alpha_intra,
                beta=machine.beta_intra,
                gamma=machine.gamma,
            )
        raise ModelError(f"link must be 'inter' or 'intra', got {link!r}")
