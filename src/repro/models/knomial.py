"""Analytical cost models for binomial and k-nomial trees (paper eqs. (1)–(3)).

The binomial models are the exact ``k = 2`` evaluations of the k-nomial
ones, mirroring how the schedule builders relate.  ``log_k(p)`` is the
integer tree depth ``⌈log_k p⌉`` (the number of communication levels an
actual k-nomial tree on ``p`` ranks has); the paper writes the continuous
logarithm but measures integer rounds, and matching the discrete depth is
what lets these models line up with the simulator on the reference
machine.
"""

from __future__ import annotations

from ..core.primitives import ilog
from ..errors import ModelError
from .params import ModelParams

__all__ = [
    "knomial_bcast_time",
    "knomial_reduce_time",
    "knomial_gather_time",
    "knomial_allgather_time",
    "knomial_allreduce_time",
    "binomial_bcast_time",
    "binomial_reduce_time",
    "binomial_gather_time",
    "binomial_allgather_time",
    "binomial_allreduce_time",
]


def _check(n: float, p: int, k: int) -> None:
    if p < 1:
        raise ModelError(f"p must be >= 1, got {p}")
    if n < 0:
        raise ModelError(f"n must be >= 0, got {n}")
    if k < 2:
        raise ModelError(f"k must be >= 2, got {k}")


def knomial_bcast_time(n: float, p: int, k: int, params: ModelParams) -> float:
    """Eq. (3) bcast: ``L·α + (k-1)·n·L·β`` with ``L = ⌈log_k p⌉``."""
    _check(n, p, k)
    L = ilog(k, p)
    return L * params.alpha + (k - 1) * n * L * params.beta


def knomial_reduce_time(n: float, p: int, k: int, params: ModelParams) -> float:
    """Eq. (3) reduce: bcast cost plus ``(k-1)·n·L·γ`` reduction work."""
    _check(n, p, k)
    L = ilog(k, p)
    return (
        L * params.alpha
        + (k - 1) * n * L * params.beta
        + (k - 1) * n * L * params.gamma
    )


def knomial_gather_time(n: float, p: int, k: int, params: ModelParams) -> float:
    """Eq. (1) gather generalized: ``L·α + n·(p-1)/p·β``.

    The bandwidth term is radix-independent — the root must land
    ``n·(p-1)/p`` bytes regardless of tree shape.
    """
    _check(n, p, k)
    if p == 1:
        return 0.0
    L = ilog(k, p)
    return L * params.alpha + n * (p - 1) / p * params.beta


def knomial_allgather_time(n: float, p: int, k: int, params: ModelParams) -> float:
    """Eq. (3) allgather (gather + bcast):
    ``L·α + (k-1)·n·(L + (p-1)/p)·β``."""
    _check(n, p, k)
    if p == 1:
        return 0.0
    L = ilog(k, p)
    return L * params.alpha + (k - 1) * n * (L + (p - 1) / p) * params.beta


def knomial_allreduce_time(n: float, p: int, k: int, params: ModelParams) -> float:
    """Eq. (3) allreduce (reduce + bcast): allgather's bandwidth plus
    ``(k-1)·n·L·γ``."""
    _check(n, p, k)
    if p == 1:
        return 0.0
    L = ilog(k, p)
    return (
        L * params.alpha
        + (k - 1) * n * (L + (p - 1) / p) * params.beta
        + (k - 1) * n * L * params.gamma
    )


# ----------------------------------------------------------------------
# Binomial (eq. (1)/(2)) — exact k = 2 evaluations
# ----------------------------------------------------------------------

def binomial_bcast_time(n: float, p: int, params: ModelParams) -> float:
    """Eq. (1) bcast: ``log2(p)·α + n·log2(p)·β``."""
    return knomial_bcast_time(n, p, 2, params)


def binomial_reduce_time(n: float, p: int, params: ModelParams) -> float:
    """Eq. (1) reduce: bcast plus ``n·log2(p)·γ``."""
    return knomial_reduce_time(n, p, 2, params)


def binomial_gather_time(n: float, p: int, params: ModelParams) -> float:
    """Eq. (1) gather: ``log2(p)·α + n·(p-1)/p·β``."""
    return knomial_gather_time(n, p, 2, params)


def binomial_allgather_time(n: float, p: int, params: ModelParams) -> float:
    """Eq. (2) allgather: ``log2(p)·α + n·(log2 p + (p-1)/p)·β``."""
    return knomial_allgather_time(n, p, 2, params)


def binomial_allreduce_time(n: float, p: int, params: ModelParams) -> float:
    """Eq. (2) allreduce: allgather plus ``n·log2(p)·γ``."""
    return knomial_allreduce_time(n, p, 2, params)
