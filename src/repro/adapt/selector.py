"""Online selection: a seeded UCB bandit with hysteresis and a ladder.

The offline tuner picks ``(algorithm, k)`` once on a healthy fabric.
:class:`OnlineSelector` keeps picking as conditions drift: each candidate
arm is a :class:`~repro.selection.table.Choice`, warm-started from the
tuner's healthy-sweep priors, and re-scored every round by a
lower-confidence-bound rule (UCB for *minimization*) over the observed
timings.  Three guards stop it thrashing:

* **hysteresis** — a challenger must beat the incumbent's mean by a
  minimum relative margin before a switch is considered;
* **switch cost** — the declared cost of tearing down one schedule and
  standing up another is charged against the challenger's projected
  advantage (and to the report's effective time when a switch happens);
* **cooldown** — after a switch, the incumbent holds for a few rounds so
  its new observations can settle before the next comparison.

On a :class:`~repro.adapt.monitor.ConditionChange` the selector resets
every arm's observation count to its warm-start pseudo-count: stale
means stop dominating, confidence widths reopen, and the bandit
re-explores — the generalization of :mod:`repro.recovery.retune`'s
one-shot re-pick.  Sustained trouble escalates down the policy ladder
*keep → retune → shrink → abort* (:meth:`OnlineSelector.ladder_action`):
``shrink`` restricts the arm set to the historically best few, and
``abort`` tells the caller to stop degrading gracefully rather than
keep running a hopeless fabric.

Determinism: ties break on the sorted ``(algorithm, k)`` key and every
input is either a pure simulation result or a seeded plan, so adaptive
runs are bit-identical at any ``jobs`` and on both backends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..errors import AdaptError
from ..selection.table import Choice
from .monitor import ConditionChange

__all__ = ["AdaptPolicy", "DEFAULT_POLICY", "OnlineSelector"]


@dataclass(frozen=True)
class AdaptPolicy:
    """Tunable knobs of the adaptive loop (selector + monitor + ladder).

    ``explore`` scales the bandit's confidence width; ``hysteresis`` is
    the minimum relative improvement a challenger needs; ``switch_cost``
    (seconds) is charged on every switch; ``cooldown`` holds the
    incumbent for that many rounds after a switch.  ``alpha`` /
    ``threshold`` / ``window`` parameterize the
    :class:`~repro.adapt.monitor.HealthMonitor`.  The ladder escalates
    when observed time stays above the healthy baseline: past
    ``shrink_ratio`` for ``patience`` rounds the arm set shrinks to the
    best ``shrink_to`` arms; past ``abort_ratio`` for ``patience``
    rounds the loop aborts.  ``max_candidates`` caps the warm-started
    arm set (best priors first); ``telemetry`` feeds the degraded-link
    stream into the monitor.
    """

    explore: float = 0.5
    hysteresis: float = 0.05
    switch_cost: float = 0.0
    cooldown: int = 2
    alpha: float = 0.3
    threshold: float = 1.25
    window: int = 2
    patience: int = 4
    shrink_ratio: float = 4.0
    shrink_to: int = 3
    abort_ratio: float = 50.0
    max_candidates: int = 8
    telemetry: bool = True

    def __post_init__(self) -> None:
        if self.explore < 0.0:
            raise AdaptError(f"explore must be >= 0, got {self.explore}")
        if self.hysteresis < 0.0:
            raise AdaptError(
                f"hysteresis must be >= 0, got {self.hysteresis}"
            )
        if self.switch_cost < 0.0:
            raise AdaptError(
                f"switch_cost must be >= 0, got {self.switch_cost}"
            )
        if self.cooldown < 0:
            raise AdaptError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.patience < 1:
            raise AdaptError(f"patience must be >= 1, got {self.patience}")
        if self.shrink_ratio <= 1.0:
            raise AdaptError(
                f"shrink_ratio must be > 1, got {self.shrink_ratio}"
            )
        if self.abort_ratio <= self.shrink_ratio:
            raise AdaptError(
                f"abort_ratio must be > shrink_ratio, got "
                f"{self.abort_ratio} <= {self.shrink_ratio}"
            )
        if self.shrink_to < 1:
            raise AdaptError(
                f"shrink_to must be >= 1, got {self.shrink_to}"
            )
        if self.max_candidates < 1:
            raise AdaptError(
                f"max_candidates must be >= 1, got {self.max_candidates}"
            )


#: The default knob settings; scenarios and CLIs start from these.
DEFAULT_POLICY = AdaptPolicy()


def _arm_key(choice: Choice) -> Tuple[str, int]:
    """Deterministic sort key for tie-breaking (k=None sorts first)."""
    return (choice.algorithm, -1 if choice.k is None else choice.k)


class OnlineSelector:
    """UCB-style bandit over ``(algorithm, k)`` arms, minimizing time.

    Warm-started from prior mean times (one pseudo-observation per arm),
    pruned to the policy's ``max_candidates`` best priors.  Scores are
    lower confidence bounds ``mean - explore * scale * sqrt(ln(t+1)/n)``
    with ``scale`` the best prior mean, so exploration width is relative
    to the problem's natural time scale.
    """

    def __init__(
        self,
        priors: Mapping[Choice, float],
        *,
        policy: AdaptPolicy = DEFAULT_POLICY,
        seed: int = 0,
    ) -> None:
        if not priors:
            raise AdaptError("selector needs at least one candidate arm")
        if any(t <= 0.0 for t in priors.values()):
            raise AdaptError("prior times must all be > 0")
        self.policy = policy
        self.seed = seed
        ranked = sorted(
            priors.items(), key=lambda item: (item[1], _arm_key(item[0]))
        )
        kept = ranked[: policy.max_candidates]
        self._arms: Tuple[Choice, ...] = tuple(
            sorted((c for c, _ in kept), key=_arm_key)
        )
        self._priors: Dict[Choice, float] = {c: t for c, t in kept}
        self._means: Dict[Choice, float] = dict(self._priors)
        self._counts: Dict[Choice, int] = {c: 1 for c in self._arms}
        self._scale = min(self._priors.values())
        self._rounds = 0
        self._cooldown_left = 0
        self._shrunk = False
        self._shrink_streak = 0
        self._abort_streak = 0
        self._current = min(
            self._arms, key=lambda c: (self._means[c], _arm_key(c))
        )
        self.switches = 0

    @property
    def arms(self) -> Tuple[Choice, ...]:
        """The live candidate arms (shrink may have restricted them)."""
        return self._arms

    @property
    def current(self) -> Choice:
        """The incumbent arm — what runs next round."""
        return self._current

    def mean(self, arm: Choice) -> float:
        """The arm's running mean observed time (prior-seeded)."""
        return self._means[arm]

    def scores(self) -> Dict[Choice, float]:
        """Lower confidence bound per live arm (smaller is better)."""
        total = sum(self._counts[c] for c in self._arms)
        return {
            c: self._means[c]
            - self.policy.explore
            * self._scale
            * math.sqrt(math.log(total + 1.0) / self._counts[c])
            for c in self._arms
        }

    def observe(self, arm: Choice, seconds: float) -> None:
        """Fold one observed round time into the arm's running mean."""
        if arm not in self._means:
            raise AdaptError(f"unknown arm {arm.describe()}")
        if seconds <= 0.0:
            raise AdaptError(f"observed time must be > 0, got {seconds}")
        self._counts[arm] += 1
        n = self._counts[arm]
        self._means[arm] += (seconds - self._means[arm]) / n
        self._rounds += 1

    def on_change(self, event: ConditionChange) -> None:
        """React to a detected condition change: reopen exploration.

        Every arm's count resets to the warm-start pseudo-count so its
        confidence width reopens and its next observation carries half
        the mean's weight — stale-regime means wash out in a few rounds
        instead of anchoring the bandit to the old fabric.  Also clears
        any cooldown: a changed world justifies an immediate re-pick.
        """
        self._counts = {c: 1 for c in self._arms}
        self._cooldown_left = 0

    def retune(self, priors: Mapping[Choice, float]) -> None:
        """Re-seed the live arms from a fresh (degraded-mode) sweep.

        This is the ladder's ``retune`` rung — the generalization of
        :func:`repro.recovery.retune.retune_degraded`'s one-shot
        re-pick: every live arm present in ``priors`` gets its mean
        replaced by the swept time under the *current* conditions and
        its count reset to the warm-start pseudo-count, so the next
        :meth:`pick` compares fresh like-for-like means.  Arms absent
        from ``priors`` keep their history.  Clears any cooldown.
        """
        for arm in self._arms:
            if arm in priors:
                if priors[arm] <= 0.0:
                    raise AdaptError(
                        f"retune prior for {arm.describe()} must be > 0"
                    )
                self._means[arm] = priors[arm]
                self._counts[arm] = 1
        self._cooldown_left = 0

    def ladder_action(
        self, ratio: float, event: Optional[ConditionChange]
    ) -> str:
        """Advance the *keep → retune → shrink → abort* ladder one round.

        ``ratio`` is observed time over the healthy baseline.  Any
        monitor event asks for ``retune`` — the caller then either
        re-seeds from a degraded-mode sweep (:meth:`retune`) or, with no
        telemetry to sweep under, just reopens exploration
        (:meth:`on_change`).  Ratios above ``abort_ratio`` for
        ``patience`` consecutive rounds return ``abort``; above
        ``shrink_ratio`` they return ``shrink`` once (the arm set
        restricts to the ``shrink_to`` best means, applied here).
        Otherwise ``keep``.
        """
        policy = self.policy
        if ratio > policy.abort_ratio:
            self._abort_streak += 1
            self._shrink_streak += 1
        elif ratio > policy.shrink_ratio:
            self._abort_streak = 0
            self._shrink_streak += 1
        else:
            self._abort_streak = 0
            self._shrink_streak = 0
        if self._abort_streak >= policy.patience:
            return "abort"
        if self._shrink_streak >= policy.patience and not self._shrunk:
            self.shrink()
            return "shrink"
        if event is not None:
            return "retune"
        return "keep"

    def shrink(self) -> Tuple[Choice, ...]:
        """Restrict the arm set to the ``shrink_to`` best current means
        (the incumbent always survives); returns the dropped arms."""
        keep = sorted(
            self._arms, key=lambda c: (self._means[c], _arm_key(c))
        )[: self.policy.shrink_to]
        if self._current not in keep:
            keep[-1] = self._current
        dropped = tuple(c for c in self._arms if c not in keep)
        self._arms = tuple(sorted(keep, key=_arm_key))
        self._shrunk = True
        return dropped

    def pick(self) -> Tuple[Choice, bool]:
        """Choose the arm for the next round.

        Returns ``(arm, switched)``.  During cooldown the incumbent
        holds.  Otherwise the best-scoring challenger wins only if its
        mean beats the incumbent's by the hysteresis margin *and* the
        projected advantage covers the switch cost.
        """
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return self._current, False
        scores = self.scores()
        best = min(
            self._arms, key=lambda c: (scores[c], _arm_key(c))
        )
        if best == self._current:
            return self._current, False
        incumbent_mean = self._means[self._current]
        challenger_mean = self._means[best]
        margin = incumbent_mean - challenger_mean
        needed = (
            incumbent_mean * self.policy.hysteresis
            + self.policy.switch_cost
        )
        if margin <= needed:
            return self._current, False
        self._current = best
        self._cooldown_left = self.policy.cooldown
        self.switches += 1
        return self._current, True
