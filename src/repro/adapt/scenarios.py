"""Named drift scenarios for benchmarks, tests, and the CLI.

Each builder turns a rank count and a seed into an
:class:`AdaptScenario` — a bundled
:class:`~repro.faults.plan.PhasedFaultPlan` and/or
:class:`~repro.faults.plan.ContentionModel` with a recommended round
count — so the CLI (``repro-adapt --scenario flap``), the regret bench,
and the golden tests all exercise *the same* deterministic drift:

* ``flap`` — a busy link pair degrades hard mid-run, then heals: the
  canonical winner-changing event the convergence gate pins.
* ``migrate`` — a straggler appears on one rank, migrates to another,
  then heals: drift the link-telemetry channel cannot see, exercising
  the timing-only detection path.
* ``contention`` — two duty-cycled background jobs couple link costs on
  and off: sustained noisy pressure rather than a clean phase edge.
* ``calm`` — no drift at all: the no-switch/no-regret baseline the
  adaptive-off bit-identity gate runs against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..errors import AdaptError
from ..faults.plan import (
    BackgroundJob,
    ContentionModel,
    FaultPhase,
    FaultPlan,
    LinkFault,
    PhasedFaultPlan,
    Straggler,
)

__all__ = [
    "AdaptScenario",
    "SCENARIOS",
    "get_scenario",
    "flap_scenario",
    "migrate_scenario",
    "contention_scenario",
    "calm_scenario",
]


@dataclass(frozen=True)
class AdaptScenario:
    """A named, fully seeded drift scenario the adaptive loop runs under."""

    name: str
    description: str
    rounds: int
    phased: Optional[PhasedFaultPlan] = None
    contention: Optional[ContentionModel] = None

    def describe(self) -> str:
        """One-line summary: name, rounds, and the drift sources."""
        parts = [f"{self.name}: {self.description} ({self.rounds} rounds"]
        if self.phased is not None:
            parts.append(f"; {self.phased.describe()}")
        if self.contention is not None:
            parts.append(f"; {self.contention.describe()}")
        return "".join(parts) + ")"


def _require_ranks(name: str, nranks: int, minimum: int) -> None:
    """Scenario builders need enough ranks to place their faults on."""
    if nranks < minimum:
        raise AdaptError(
            f"scenario {name!r} needs >= {minimum} ranks, got {nranks}"
        )


def flap_scenario(nranks: int, *, seed: int = 0) -> AdaptScenario:
    """Rank 1's NIC flaps: every link touching it degrades at round 8
    (8x bandwidth, 4x latency) and heals at round 20.

    A failing NIC penalizes *all* of one rank's traffic, which reranks
    the families decisively: the butterfly winners (recursive
    multiplying/doubling) route every rank through log-p exchanges with
    the sick rank, while a k-nomial tree touches it on a single edge —
    so the post-change oracle winner differs from the healthy one and
    the convergence gate has a real switch to pin.
    """
    _require_ranks("flap", nranks, 2)
    links = []
    for r in range(nranks):
        if r == 1:
            continue
        links.append(
            LinkFault(src=1, dst=r, delay_factor=4.0, bandwidth_factor=8.0)
        )
        links.append(
            LinkFault(src=r, dst=1, delay_factor=4.0, bandwidth_factor=8.0)
        )
    degraded = FaultPlan(seed=seed, links=tuple(links))
    return AdaptScenario(
        name="flap",
        description=(
            "every link touching rank 1 degrades 8x at round 8, "
            "heals at round 20"
        ),
        rounds=28,
        phased=PhasedFaultPlan(
            (
                FaultPhase(8, degraded, label="flapping"),
                FaultPhase(20, None, label="healed"),
            )
        ),
    )


def migrate_scenario(nranks: int, *, seed: int = 0) -> AdaptScenario:
    """A straggler appears on rank 1, migrates to the middle rank at
    round 14, and heals at round 22 — compute-side drift invisible to
    link telemetry, so only the timing channel can catch it."""
    _require_ranks("migrate", nranks, 4)
    first = FaultPlan(
        seed=seed, stragglers=(Straggler(rank=1, factor=8.0),)
    )
    second = FaultPlan(
        seed=seed, stragglers=(Straggler(rank=nranks // 2, factor=8.0),)
    )
    return AdaptScenario(
        name="migrate",
        description=(
            f"8x straggler on rank 1 at round 6, migrates to rank "
            f"{nranks // 2} at round 14, heals at round 22"
        ),
        rounds=28,
        phased=PhasedFaultPlan(
            (
                FaultPhase(6, first, label="straggler@1"),
                FaultPhase(14, second, label=f"straggler@{nranks // 2}"),
                FaultPhase(22, None, label="healed"),
            )
        ),
    )


def contention_scenario(nranks: int, *, seed: int = 0) -> AdaptScenario:
    """Two duty-cycled background jobs share the fabric: one heavy job
    on the low ranks most of the time, one lighter job on the high
    ranks half the time — noisy sustained pressure, no clean edge."""
    _require_ranks("contention", nranks, 4)
    half = nranks // 2
    return AdaptScenario(
        name="contention",
        description="two duty-cycled neighbor jobs couple link costs",
        rounds=24,
        contention=ContentionModel(
            seed=seed,
            jobs=(
                BackgroundJob(
                    name="heavy-low",
                    ranks=tuple(range(0, half)),
                    intensity=4.0,
                    delay=1.0,
                    duty=0.75,
                ),
                BackgroundJob(
                    name="light-high",
                    ranks=tuple(range(half, nranks)),
                    intensity=1.5,
                    duty=0.5,
                ),
            ),
        ),
    )


def calm_scenario(nranks: int, *, seed: int = 0) -> AdaptScenario:
    """No drift: a healthy fabric end to end.  The adaptive loop must
    provably never switch here (the perf gate pins it)."""
    _require_ranks("calm", nranks, 2)
    return AdaptScenario(
        name="calm",
        description="healthy fabric, no drift",
        rounds=12,
    )


#: Scenario registry: name -> builder(nranks, *, seed).
SCENARIOS: Dict[str, Callable[..., AdaptScenario]] = {
    "flap": flap_scenario,
    "migrate": migrate_scenario,
    "contention": contention_scenario,
    "calm": calm_scenario,
}


def get_scenario(name: str, nranks: int, *, seed: int = 0) -> AdaptScenario:
    """Build the named scenario for a machine of ``nranks`` ranks."""
    if name not in SCENARIOS:
        raise AdaptError(
            f"unknown scenario {name!r}; have {sorted(SCENARIOS)}"
        )
    return SCENARIOS[name](nranks, seed=seed)
