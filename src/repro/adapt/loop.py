"""The adaptive loop: observe → detect → re-select, round after round.

:func:`run_adaptive` drives a stream of collective rounds against a
fabric whose condition drifts — a
:class:`~repro.faults.plan.PhasedFaultPlan` of degradations that appear
and heal, a :class:`~repro.faults.plan.ContentionModel` of background
jobs, or both stacked via :func:`~repro.faults.plan.combine_plans`.
Each round it:

1. resolves the round's effective fault plan and simulates the
   incumbent ``(algorithm, k)`` under it (the simulator *is* the
   observation — simulation is pure, so the loop is bit-identical at
   any ``jobs`` and under any engine);
2. feeds the observed time and the degraded-link telemetry
   (:func:`repro.recovery.detect.simulated_failures`) into the
   :class:`~repro.adapt.monitor.HealthMonitor`;
3. advances the :class:`~repro.adapt.selector.OnlineSelector`'s ladder
   — ``keep`` in steady state, ``retune`` on a detected change
   (re-seeding arms from a sweep under the *telemetry-derived* degraded
   plan, never by peeking at the injected plan), ``shrink`` after
   sustained trouble, ``abort`` when the fabric is hopeless;
4. lets the bandit pick next round's arm, charging the declared switch
   cost whenever the arm changes.

The returned :class:`AdaptReport` carries a per-round trail plus the
three headline numbers the bench gates: cumulative **regret** vs. an
oracle that re-picks the best arm every round with perfect knowledge,
the **static regret** a fixed healthy-winner selection would have paid,
and **time-to-adapt** — rounds from each phase change until the running
arm matches the oracle's post-change winner.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import AdaptError
from ..faults.plan import (
    ContentionModel,
    FaultPlan,
    PhasedFaultPlan,
    combine_plans,
)
from ..obs import OBS
from ..recovery.detect import LinkDegraded, simulated_failures
from ..recovery.retune import degraded_plan
from ..selection.table import Choice
from ..simnet.machine import MachineSpec
from .monitor import HealthMonitor
from .selector import DEFAULT_POLICY, AdaptPolicy, OnlineSelector, _arm_key

__all__ = ["RoundRecord", "AdaptReport", "AdaptiveRun", "run_adaptive"]


@dataclass(frozen=True)
class RoundRecord:
    """One round of the adaptive loop, fully accounted.

    ``time`` is the incumbent's simulated time under the round's
    effective plan; ``effective_time`` adds the switch cost when this
    round first ran a newly chosen arm.  ``oracle_*`` is the
    best-possible pick under the same plan; ``static_time`` what the
    fixed healthy winner would have cost.  ``action`` is the ladder rung
    taken (``keep``/``retune``/``shrink``/``abort``) and ``event`` the
    monitor event kind that round, if any.
    """

    round_index: int
    algorithm: str
    k: Optional[int]
    time: float
    effective_time: float
    switched: bool
    action: str
    event: Optional[str]
    oracle_algorithm: str
    oracle_k: Optional[int]
    oracle_time: float
    static_time: float


@dataclass
class AdaptReport:
    """The adaptive loop's full trail and headline metrics."""

    collective: str
    machine: str
    nbytes: int
    policy: AdaptPolicy
    static_algorithm: str
    static_k: Optional[int]
    change_rounds: Tuple[int, ...] = ()
    records: List[RoundRecord] = field(default_factory=list)
    aborted: bool = False

    @property
    def final_choice(self) -> Choice:
        """The arm running when the loop ended."""
        if not self.records:
            raise AdaptError("empty adaptive report has no final choice")
        last = self.records[-1]
        return Choice(last.algorithm, last.k)

    @property
    def switches(self) -> int:
        """How many rounds started on a different arm than the last."""
        return sum(1 for r in self.records if r.switched)

    @property
    def regret(self) -> float:
        """Cumulative effective time paid over the per-round oracle."""
        return sum(r.effective_time - r.oracle_time for r in self.records)

    @property
    def static_regret(self) -> float:
        """What a fixed healthy-winner selection would have paid over
        the oracle — the baseline adaptivity must beat."""
        return sum(r.static_time - r.oracle_time for r in self.records)

    @property
    def time_to_adapt(self) -> Dict[int, Optional[int]]:
        """Rounds from each phase change until the running arm matches
        the oracle's pick for that round (``None`` = never caught up)."""
        out: Dict[int, Optional[int]] = {}
        for c in self.change_rounds:
            if c >= len(self.records):
                continue
            out[c] = None
            for rec in self.records[c:]:
                if (
                    rec.algorithm == rec.oracle_algorithm
                    and rec.k == rec.oracle_k
                ):
                    out[c] = rec.round_index - c
                    break
        return out

    def to_dict(self) -> dict:
        """JSON-ready representation (what ``adapt_report.json`` holds)."""
        return {
            "collective": self.collective,
            "machine": self.machine,
            "nbytes": self.nbytes,
            "policy": asdict(self.policy),
            "static": {
                "algorithm": self.static_algorithm,
                "k": self.static_k,
            },
            "final": {
                "algorithm": self.final_choice.algorithm,
                "k": self.final_choice.k,
            },
            "change_rounds": list(self.change_rounds),
            "rounds": [asdict(r) for r in self.records],
            "switches": self.switches,
            "regret": self.regret,
            "static_regret": self.static_regret,
            "time_to_adapt": {
                str(c): v for c, v in self.time_to_adapt.items()
            },
            "aborted": self.aborted,
        }

    def describe(self) -> str:
        """One-line human summary of the run."""
        tta = ", ".join(
            f"round {c}: {'never' if v is None else f'{v} round(s)'}"
            for c, v in sorted(self.time_to_adapt.items())
        )
        return (
            f"adapt {self.collective} n={self.nbytes} on {self.machine}: "
            f"{len(self.records)} round(s), {self.switches} switch(es), "
            f"regret {self.regret:.6f}s vs static {self.static_regret:.6f}s"
            + (f"; time-to-adapt {tta}" if tta else "")
            + ("; ABORTED" if self.aborted else "")
        )


@dataclass
class AdaptiveRun:
    """What ``execute(..., adapt=...)`` returns: the adaptive loop's
    :class:`AdaptReport`, the :class:`~repro.runtime.executor.
    CollectiveRun` of the executed schedule on the requested backend,
    and ``choice`` — the ``(algorithm, k)`` that actually ran (the
    loop's final pick, or the caller's original choice on an abort)."""

    report: AdaptReport
    run: object
    choice: Choice


def run_adaptive(
    collective: str,
    machine: Union[str, MachineSpec],
    nbytes: int,
    *,
    rounds: int,
    phased: Optional[PhasedFaultPlan] = None,
    contention: Optional[ContentionModel] = None,
    algorithms: Optional[Sequence[str]] = None,
    root: int = 0,
    policy: AdaptPolicy = DEFAULT_POLICY,
    jobs: int = 0,
    engine: str = "auto",
    seed: int = 0,
    priors: Optional[Mapping[Choice, float]] = None,
) -> AdaptReport:
    """Run the closed loop for ``rounds`` rounds; return the full trail.

    The candidate arm set is the tuner's healthy sweep over the
    registered (or given) ``algorithms``, pruned to the policy's
    ``max_candidates`` best — those healthy times are also the bandit's
    warm-start priors.  ``phased`` and ``contention`` drive the drift;
    with neither, every round is healthy and the loop provably never
    switches (the perf gate pins this).  ``jobs``/``engine`` tune sweep
    wall-clock only: every number in the report is bit-identical across
    them.  An ``abort`` from the ladder stops the loop early and sets
    ``aborted`` on the report — it never raises.

    ``priors`` seeds the healthy arm times directly — the
    ``{Choice: seconds}`` mapping
    :meth:`repro.server.SelectionConfig.priors_for` exports — replacing
    the loop's own healthy sweep.  Healthy simulation is deterministic,
    so priors recorded on the same machine reproduce exactly the sweep's
    numbers and the whole trail is bit-identical to a cold run; the
    warm start only removes the boot sweep's wall-clock.
    """
    from ..api import build
    from ..core.registry import info
    from ..selection.tuner import sweep_collective
    from ..simnet.machines import resolve as resolve_machine

    machine = resolve_machine(machine)
    if rounds < 1:
        raise AdaptError(f"rounds must be >= 1, got {rounds}")
    nbytes = int(nbytes)

    cache: Dict[Optional[FaultPlan], Dict[Choice, float]] = {}
    if priors:
        cache[None] = {
            choice: float(time) for choice, time in priors.items()
        }

    def times_under(plan: Optional[FaultPlan]) -> Dict[Choice, float]:
        if plan not in cache:
            sweep = sweep_collective(
                collective,
                machine,
                [nbytes],
                algorithms=algorithms,
                root=root,
                faults=plan,
                jobs=jobs,
                engine=engine,
            )
            cache[plan] = {
                e.choice: e.time
                for e in sweep.entries
                if e.nbytes == nbytes
            }
        return cache[plan]

    healthy = times_under(None)
    selector = OnlineSelector(healthy, policy=policy, seed=seed)
    monitor = HealthMonitor(
        alpha=policy.alpha,
        threshold=policy.threshold,
        window=policy.window,
    )
    universe = selector.arms  # oracle competes over the pruned arm set
    static_choice = selector.current
    healthy_best = healthy[static_choice]
    report = AdaptReport(
        collective=collective,
        machine=machine.name,
        nbytes=nbytes,
        policy=policy,
        static_algorithm=static_choice.algorithm,
        static_k=static_choice.k,
        change_rounds=phased.change_rounds if phased is not None else (),
    )

    schedules: Dict[Choice, object] = {}

    def schedule_for(choice: Choice):
        if choice not in schedules:
            entry = info(collective, choice.algorithm)
            schedules[choice] = build(
                collective,
                choice.algorithm,
                p=machine.nranks,
                k=choice.k,
                root=root if entry.takes_root else 0,
            )
        return schedules[choice]

    prev_arm: Optional[Choice] = None
    for r in range(rounds):
        plan = combine_plans(
            phased.plan_at(r) if phased is not None else None,
            contention.plan_at(r) if contention is not None else None,
        )
        times = times_under(plan)
        incumbent = selector.current
        if incumbent not in times:
            raise AdaptError(
                f"sweep under round {r}'s plan lost arm "
                f"{incumbent.describe()}"
            )
        observed = times[incumbent]
        oracle = min(universe, key=lambda c: (times[c], _arm_key(c)))
        # Telemetry channel first (a link event names the cause; a bare
        # timing event only says *something* changed).
        degraded: Tuple[LinkDegraded, ...] = ()
        event = None
        if policy.telemetry and plan is not None:
            _, degraded = simulated_failures(schedule_for(incumbent), plan)
            event = monitor.note_degraded(r, degraded)
        elif policy.telemetry:
            event = monitor.note_degraded(r, ())
        timing_event = monitor.observe(r, observed)
        if event is None:
            event = timing_event
        action = selector.ladder_action(observed / healthy_best, event)
        switched_into = prev_arm is not None and incumbent != prev_arm
        effective = observed + (
            policy.switch_cost if switched_into else 0.0
        )
        report.records.append(
            RoundRecord(
                round_index=r,
                algorithm=incumbent.algorithm,
                k=incumbent.k,
                time=observed,
                effective_time=effective,
                switched=switched_into,
                action=action,
                event=event.kind if event is not None else None,
                oracle_algorithm=oracle.algorithm,
                oracle_k=oracle.k,
                oracle_time=times[oracle],
                static_time=times[static_choice],
            )
        )
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_adapt_rounds_total", collective=collective
            ).inc()
            if switched_into:
                OBS.metrics.counter(
                    "repro_adapt_switches_total", collective=collective
                ).inc()
            if event is not None:
                OBS.metrics.counter(
                    "repro_adapt_changes_total", kind=event.kind
                ).inc()
        if action == "abort":
            report.aborted = True
            break
        if action == "retune":
            # Re-seed from what telemetry *observed*, not from the
            # injected plan — with no degraded links on record the best
            # we can do is reopen exploration.
            observed_plan = degraded_plan(degraded)
            if observed_plan is not None:
                selector.retune(times_under(observed_plan))
            elif event is not None and event.kind == "heal":
                selector.retune(healthy)
            else:
                selector.on_change(event)  # type: ignore[arg-type]
        selector.observe(incumbent, observed)
        prev_arm = incumbent
        selector.pick()
    return report
