"""Online adaptive selection under drifting degradation and contention.

The offline tuner (:mod:`repro.selection.tuner`) answers "which
``(algorithm, k)`` wins on a *healthy* fabric" once.  This package keeps
the answer current while the fabric drifts — links flap, stragglers
migrate, neighbor jobs come and go — by closing the loop between
observation and selection:

* :mod:`repro.adapt.monitor` — a debounced EWMA changepoint detector
  over per-round timings plus the degraded-link telemetry stream,
  emitting structured :class:`ConditionChange` events;
* :mod:`repro.adapt.selector` — a seeded UCB bandit over the candidate
  arms, warm-started from tuner priors, guarded by hysteresis, switch
  cost, and cooldown, escalating a *keep → retune → shrink → abort*
  policy ladder;
* :mod:`repro.adapt.loop` — :func:`run_adaptive`, the round loop that
  wires plan resolution, simulation, detection, and re-selection into
  an :class:`AdaptReport` of regret and time-to-adapt vs. an oracle;
* :mod:`repro.adapt.scenarios` — named deterministic drift scenarios
  (``flap``, ``migrate``, ``contention``, ``calm``) shared by the CLI,
  the bench, and the golden tests.

Time-varying conditions themselves are declared in
:mod:`repro.faults.plan` (:class:`~repro.faults.plan.PhasedFaultPlan`,
:class:`~repro.faults.plan.ContentionModel`) and charged by the
simulator exactly like static fault plans.  Everything downstream is a
pure function of seeds and plans, so adaptive runs are bit-identical at
any ``--jobs`` and across simulation engines — and with ``adapt`` off,
no code in this package runs at all.
"""

from .loop import AdaptiveRun, AdaptReport, RoundRecord, run_adaptive
from .monitor import ConditionChange, HealthMonitor
from .scenarios import (
    SCENARIOS,
    AdaptScenario,
    calm_scenario,
    contention_scenario,
    flap_scenario,
    get_scenario,
    migrate_scenario,
)
from .selector import DEFAULT_POLICY, AdaptPolicy, OnlineSelector

__all__ = [
    "AdaptPolicy",
    "DEFAULT_POLICY",
    "OnlineSelector",
    "ConditionChange",
    "HealthMonitor",
    "RoundRecord",
    "AdaptReport",
    "AdaptiveRun",
    "run_adaptive",
    "AdaptScenario",
    "SCENARIOS",
    "get_scenario",
    "flap_scenario",
    "migrate_scenario",
    "contention_scenario",
    "calm_scenario",
]
