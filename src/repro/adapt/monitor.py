"""Health monitoring: changepoint detection over per-round timings.

The adaptive loop needs to know *when the fabric changed*, not just that
a round was slow — a single outlier round must not trigger a re-tune.
:class:`HealthMonitor` keeps an EWMA baseline of observed round times
and fires a structured :class:`ConditionChange` only when the observed /
baseline ratio stays past the threshold for ``window`` consecutive
rounds (the classic debounced changepoint rule).  Outlier rounds are
*not* folded into the EWMA while a streak is open, so a real regime
change cannot slowly poison its own baseline into silence.

Alongside the timing channel, :meth:`HealthMonitor.note_degraded`
watches the :class:`~repro.recovery.detect.LinkDegraded` stream (the
simulator's static detector, or heartbeat telemetry on the threaded
backend) and fires on *set changes*: a new degraded link is a ``link``
event, the set emptying is a ``heal`` event.  Both channels emit the
same :class:`ConditionChange` vocabulary, so the selector is agnostic
about which one saw the drift first.

Everything here is a pure function of the observations fed in — the
monitor never reads a clock — which is what keeps adaptive runs
bit-identical across backends and job counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from ..errors import AdaptError
from ..recovery.detect import LinkDegraded

__all__ = ["ConditionChange", "HealthMonitor"]


@dataclass(frozen=True)
class ConditionChange:
    """A detected shift in fabric condition.

    ``kind`` is one of ``"degrade"`` (timings rose past the threshold
    for a full window), ``"improve"`` (timings fell — something healed),
    ``"link"`` (the degraded-link telemetry set changed), or ``"heal"``
    (that set emptied).  ``ratio`` is observed / baseline at the moment
    of firing (1.0 for telemetry events, which carry no timing).
    """

    round_index: int
    kind: str
    ratio: float
    observed: float
    baseline: float
    detail: str = ""

    def describe(self) -> str:
        """One-line summary: round, kind, ratio, and any detail."""
        extra = f" ({self.detail})" if self.detail else ""
        return (
            f"round {self.round_index}: {self.kind} "
            f"x{self.ratio:.2f}{extra}"
        )


class HealthMonitor:
    """Debounced EWMA changepoint detector over round timings.

    ``alpha`` is the EWMA weight of the newest in-band observation;
    ``threshold`` the observed/baseline ratio that opens a streak; and
    ``window`` the number of consecutive out-of-band rounds required
    before a :class:`ConditionChange` fires.  After firing, the baseline
    re-anchors to the new regime so a *second* change can be detected.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.3,
        threshold: float = 1.25,
        window: int = 2,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise AdaptError(f"alpha must be in (0, 1], got {alpha}")
        if threshold <= 1.0:
            raise AdaptError(f"threshold must be > 1, got {threshold}")
        if window < 1:
            raise AdaptError(f"window must be >= 1, got {window}")
        self.alpha = alpha
        self.threshold = threshold
        self.window = window
        self._baseline: Optional[float] = None
        self._streak_high = 0
        self._streak_low = 0
        self._degraded: FrozenSet[Tuple[int, int]] = frozenset()

    @property
    def baseline(self) -> Optional[float]:
        """The current EWMA baseline (``None`` before any observation)."""
        return self._baseline

    def reset(self) -> None:
        """Forget the baseline and both telemetry/streak states."""
        self._baseline = None
        self._streak_high = 0
        self._streak_low = 0
        self._degraded = frozenset()

    def observe(
        self, round_index: int, seconds: float
    ) -> Optional[ConditionChange]:
        """Feed one round's observed time; maybe fire a change event.

        The first observation anchors the baseline.  Observations inside
        the threshold band update the EWMA; observations outside it are
        withheld from the EWMA and counted — ``window`` in a row fires
        ``"degrade"`` (or ``"improve"``) and re-anchors the baseline at
        the offending observation.
        """
        if seconds <= 0.0:
            raise AdaptError(
                f"observed time must be > 0, got {seconds} "
                f"at round {round_index}"
            )
        if self._baseline is None:
            self._baseline = seconds
            return None
        ratio = seconds / self._baseline
        if ratio > self.threshold:
            self._streak_high += 1
            self._streak_low = 0
            if self._streak_high >= self.window:
                event = ConditionChange(
                    round_index=round_index,
                    kind="degrade",
                    ratio=ratio,
                    observed=seconds,
                    baseline=self._baseline,
                )
                self._baseline = seconds
                self._streak_high = 0
                return event
            return None
        if ratio < 1.0 / self.threshold:
            self._streak_low += 1
            self._streak_high = 0
            if self._streak_low >= self.window:
                event = ConditionChange(
                    round_index=round_index,
                    kind="improve",
                    ratio=ratio,
                    observed=seconds,
                    baseline=self._baseline,
                )
                self._baseline = seconds
                self._streak_low = 0
                return event
            return None
        self._streak_high = 0
        self._streak_low = 0
        self._baseline = (
            self.alpha * seconds + (1.0 - self.alpha) * self._baseline
        )
        return None

    def note_degraded(
        self, round_index: int, degraded: Iterable[LinkDegraded]
    ) -> Optional[ConditionChange]:
        """Feed the round's degraded-link telemetry; fire on set change.

        A changed non-empty set fires ``"link"``; the set emptying fires
        ``"heal"``.  An unchanged set never fires, so steady degradation
        does not re-trigger the selector every round.
        """
        links = frozenset((d.src, d.dst) for d in degraded)
        if links == self._degraded:
            return None
        previous, self._degraded = self._degraded, links
        kind = "heal" if not links else "link"
        detail = (
            "links " + ", ".join(f"{s}->{d}" for s, d in sorted(links))
            if links
            else "all links healed "
            + ", ".join(f"{s}->{d}" for s, d in sorted(previous))
        )
        base = self._baseline if self._baseline is not None else 0.0
        return ConditionChange(
            round_index=round_index,
            kind=kind,
            ratio=1.0,
            observed=base,
            baseline=base,
            detail=detail,
        )
