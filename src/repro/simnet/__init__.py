"""Discrete-event network simulator — the reproduction's stand-in for
Frontier and Polaris hardware (see DESIGN.md §2 for the substitution
rationale)."""

from .engine import ClassBatch, Engine, Event, Resource, Timeout
from .machine import DragonflySpec, GiBps, MachineSpec, us
from .machines import by_name, frontier, get, polaris, reference, resolve
from .noise import NoiseModel
from .simulate import ENGINES, SimResult, TrafficSummary, simulate, traffic_summary
from .trace import TimelineStats, timeline_stats, to_chrome_trace, write_chrome_trace

__all__ = [
    "Engine",
    "Event",
    "Resource",
    "Timeout",
    "MachineSpec",
    "DragonflySpec",
    "us",
    "GiBps",
    "frontier",
    "polaris",
    "reference",
    "by_name",
    "get",
    "resolve",
    "NoiseModel",
    "simulate",
    "SimResult",
    "ENGINES",
    "ClassBatch",
    "traffic_summary",
    "TrafficSummary",
    "to_chrome_trace",
    "write_chrome_trace",
    "timeline_stats",
    "TimelineStats",
]
