"""Run-to-run variance model (paper §VI-H).

The paper reports significant run-to-run variance on Frontier — enough to
change which algorithm and radix win a given configuration — and frames
its conclusions as heuristics for that reason.  :class:`NoiseModel`
reproduces the phenomenon: each message's cost is multiplied by an i.i.d.
lognormal factor, seeded so a given (seed, message index) pair is
deterministic and simulations stay reproducible.

Lognormal is the conventional choice for network-service-time jitter: it
is multiplicative, strictly positive, and right-skewed (occasional slow
messages, never negative ones).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import MachineError
from ..faults.rng import derive_rng

__all__ = ["NoiseModel"]


@dataclass(frozen=True)
class NoiseModel:
    """Seeded lognormal per-message perturbation.

    Parameters
    ----------
    sigma:
        Standard deviation of the underlying normal.  0.1 ≈ ±10% typical
        jitter; 0.3 reproduces the paper's "optimal k changes between
        runs" regime.
    seed:
        RNG seed; two models with the same (sigma, seed) produce identical
        factor sequences.
    """

    sigma: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise MachineError(f"noise sigma must be >= 0, got {self.sigma}")

    def factor(self, index: int) -> float:
        """Multiplicative cost factor for message ``index``.

        Mean-one lognormal (``exp(N(-σ²/2, σ²))``), so noise perturbs but
        does not bias aggregate cost.  Uses the counter-based construction
        shared with the fault planner (:func:`repro.faults.rng.derive_rng`)
        so factors are random-access — the simulator draws them in
        nondeterministic order — and the stream is bit-identical to the
        historical per-index construction.
        """
        if self.sigma == 0:
            return 1.0
        rng = derive_rng(self.seed, index)
        return float(
            math.exp(rng.normal(-0.5 * self.sigma**2, self.sigma))
        )
