"""Machine configurations: Frontier-like, Polaris-like, and a model-exact
reference machine.

These encode the hardware facts the paper's evaluation hinges on (§VI-B):

**Frontier (OLCF)** — 9,408 nodes, 1× EPYC 7A53 + 4× MI250X (8 logical
GPUs) per node, four 200 Gb/s Slingshot links per node (one per GCD pair),
GPUs linked by Infinity Fabric, dragonfly topology.  Experiments use 32,
128, and 1024 nodes with 1 or 8 processes per node.

**Polaris (ALCF)** — 560 nodes, 1× EPYC 7543P + 4× A100 per node, GPUs
fully connected by NVLink (dedicated per-pair links), two Slingshot ports
per node, dragonfly topology.

Numbers are calibrated to public microbenchmark figures for these systems
(MPI small-message latency ≈ 2 µs internode; 200 Gb/s ≈ 23 GiB/s effective
per port; NIC message processing in the 50–100 ns range; GPU-aware MPI
intranode latency notably *not* better than internode on Polaris, but
several times better on Frontier's same-package GCD pairs) — absolute
simulated times are indicative only; the reproduction targets orderings
and ratios, as documented in EXPERIMENTS.md.

The :func:`reference` machine strips away every feature the paper's
analytical models ignore (ports=1, zero per-message and injection
overheads, uniform links), so simulated times collapse to the α–β–γ
models of eqs. (1)–(12) — the agreement is checked by
``benchmarks/bench_models_vs_sim.py``.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Union

from ..errors import MachineError
from .machine import DragonflySpec, GiBps, MachineSpec, us

__all__ = ["frontier", "polaris", "reference", "by_name", "get", "resolve"]


def frontier(
    nodes: int = 128,
    ppn: int = 1,
    *,
    dragonfly_groups: bool = True,
) -> MachineSpec:
    """Frontier-like machine (§VI-B): 4 NIC ports/node, fast shared
    Infinity Fabric intranode, dragonfly internode.

    ``ppn=1`` models the paper's 1-process-per-node runs; ``ppn=8`` the
    MPI-per-GPU programming model (8 GCDs).
    """
    if ppn not in (1, 2, 4, 8):
        raise MachineError(f"frontier ppn must be 1, 2, 4 or 8, got {ppn}")
    nodes_per_group = 16 if nodes % 16 == 0 else nodes
    return MachineSpec(
        name=f"frontier-{nodes}x{ppn}",
        nodes=nodes,
        ppn=ppn,
        # Slingshot-11: ~2 µs MPI latency, 200 Gb/s ≈ 23 GiB/s per port.
        alpha_inter=us(2.0),
        beta_inter=GiBps(23.0),
        nic_ports=4,
        port_msg_overhead=us(0.06),
        # Infinity Fabric between GCDs: low latency (same package for the
        # paired GCD, one hop otherwise), ~4x NIC bandwidth per channel,
        # but a shared fabric — 8 concurrent channels per node.
        alpha_intra=us(0.45),
        beta_intra=GiBps(90.0),
        intra_kind="shared",
        intra_channels=8,
        intra_msg_overhead=us(0.02),
        injection_overhead=us(0.015),
        # GPU-side reduction throughput as seen by the MPI reduction path.
        gamma=GiBps(40.0),
        dragonfly=DragonflySpec(
            nodes_per_group=nodes_per_group,
            alpha_global=us(0.4),
            global_channels=4 * nodes_per_group if dragonfly_groups else None,
        ),
    )


def polaris(
    nodes: int = 128,
    ppn: int = 1,
    *,
    dragonfly_groups: bool = True,
) -> MachineSpec:
    """Polaris-like machine (§VI-B): 2 NIC ports/node, fully connected
    dedicated NVLink intranode whose *latency* matches the NIC (the
    architectural difference behind k-ring's flat Fig. 11c).
    """
    if ppn not in (1, 2, 4):
        raise MachineError(f"polaris ppn must be 1, 2 or 4, got {ppn}")
    nodes_per_group = 16 if nodes % 16 == 0 else nodes
    return MachineSpec(
        name=f"polaris-{nodes}x{ppn}",
        nodes=nodes,
        ppn=ppn,
        alpha_inter=us(2.2),
        beta_inter=GiBps(21.0),
        nic_ports=2,
        port_msg_overhead=us(0.07),
        # NVLink: dedicated per-pair links, huge bandwidth, but GPU-aware
        # MPI latency over NVLink is no better than over the NIC.
        alpha_intra=us(2.0),
        beta_intra=GiBps(150.0),
        intra_kind="dedicated",
        intra_msg_overhead=us(0.02),
        injection_overhead=us(0.02),
        gamma=GiBps(40.0),
        dragonfly=DragonflySpec(
            nodes_per_group=nodes_per_group,
            alpha_global=us(0.5),
            global_channels=2 * nodes_per_group if dragonfly_groups else None,
        ),
    )


def reference(
    p: int,
    *,
    alpha: float = us(2.0),
    beta: float = GiBps(23.0),
    gamma: float = GiBps(40.0),
) -> MachineSpec:
    """Model-exact reference machine: the α–β–γ world of the paper's
    analytical models (§III–V).

    One rank per node, a single NIC port, and zero software overheads:
    ``k - 1`` concurrent messages from one rank serialize their ``n·β``
    terms while sharing a single pipelined ``α`` — precisely the per-level
    cost ``α + (k-1)·n·β`` of eq. (3).
    """
    return MachineSpec(
        name=f"reference-{p}",
        nodes=p,
        ppn=1,
        alpha_inter=alpha,
        beta_inter=beta,
        nic_ports=1,
        port_msg_overhead=0.0,
        alpha_intra=alpha,
        beta_intra=beta,
        intra_kind="dedicated",
        injection_overhead=0.0,
        gamma=gamma,
        dragonfly=None,
    )


def by_name(name: str, nodes: int, ppn: int) -> MachineSpec:
    """String dispatch used by the CLI (``frontier``/``polaris``/``reference``)."""
    if name == "frontier":
        return frontier(nodes, ppn)
    if name == "polaris":
        return polaris(nodes, ppn)
    if name == "reference":
        if ppn != 1:
            raise MachineError("reference machine is 1 rank per node")
        return reference(nodes)
    raise MachineError(
        f"unknown machine {name!r}; known: frontier, polaris, reference"
    )


# Self-contained spec names: base[-NODES[xPPN]][-flat].
_NAME_RE = re.compile(
    r"^(?P<base>frontier|polaris|reference|dragonfly)"
    r"(?:-(?P<nodes>\d+)(?:x(?P<ppn>\d+))?)?"
    r"(?P<flat>-flat)?$"
)


def get(name: str) -> MachineSpec:
    """A machine spec from a self-contained registry name.

    Grammar: ``base[-NODES[xPPN]][-flat]`` where ``base`` is
    ``frontier``, ``polaris``, ``reference``, or ``dragonfly`` (an alias
    for a 1-ppn frontier — the name the large-p experiments use).
    ``NODES`` defaults to each base's default geometry; ``PPN`` to 1.
    A ``-flat`` suffix drops the dragonfly global-channel *pools* while
    keeping the group latency layer (``alpha_global``) — the shape the
    collapsed engine accepts (see
    :func:`repro.compile.classes.machine_asymmetry`).

    Accepted everywhere a :class:`~repro.simnet.machine.MachineSpec` is:
    the :func:`repro.api.simulate` facade, the CLIs' ``--machine``, and
    sweep configurations — so p=10⁴–10⁶ specs never need hand-built
    objects.

    >>> get("dragonfly-1024").nranks
    1024
    >>> get("frontier-64x8").ppn
    8
    >>> get("reference-4096").name
    'reference-4096'
    >>> get("frontier-256-flat").dragonfly.global_channels is None
    True
    """
    m = _NAME_RE.match(name.strip())
    if m is None:
        raise MachineError(
            f"unparseable machine name {name!r}; expected "
            f"base[-NODES[xPPN]][-flat] with base one of "
            f"frontier, polaris, reference, dragonfly"
        )
    base = m.group("base")
    nodes = int(m.group("nodes")) if m.group("nodes") else None
    ppn = int(m.group("ppn")) if m.group("ppn") else 1
    groups = m.group("flat") is None
    if base == "reference":
        if ppn != 1:
            raise MachineError("reference machine is 1 rank per node")
        return reference(nodes if nodes is not None else 128)
    if base == "dragonfly" and ppn != 1:
        raise MachineError("dragonfly-N names are 1 rank per node")
    builder = polaris if base == "polaris" else frontier
    spec = builder(
        nodes if nodes is not None else 128, ppn, dragonfly_groups=groups
    )
    if not groups:
        spec = dataclasses.replace(spec, name=spec.name + "-flat")
    return spec


def resolve(machine: Union[str, MachineSpec]) -> MachineSpec:
    """``machine`` itself, or :func:`get` of it when given as a name."""
    if isinstance(machine, str):
        return get(machine)
    if not isinstance(machine, MachineSpec):
        raise MachineError(
            f"expected a MachineSpec or registry name, "
            f"got {type(machine).__name__}"
        )
    return machine
