"""Machine specifications: the hardware parameters the simulator models.

A :class:`MachineSpec` captures exactly the exascale hardware features the
paper identifies as determining collective performance (§II-B):

* **Multi-port NICs** (§II-B2): each node owns ``nic_ports`` full-duplex
  network ports.  An internode message occupies one send-side port unit
  and one receive-side port unit for ``port_msg_overhead + nbytes ·
  beta_inter`` — so up to ``nic_ports`` messages stream concurrently at
  full per-port bandwidth, and wider fan-outs serialize into waves.  This
  is the mechanism behind recursive multiplying's empirical optimum
  ``k ≈ ports`` (paper Fig. 8b).
* **Message buffering / injection overhead** (§II-B2): posting a
  nonblocking operation costs the CPU ``injection_overhead`` serially.
  This bounds how much latency hiding a wider radix can buy, producing the
  upper bound on useful k the paper observes at 1024 nodes (Fig. 10a).
* **Intranode links** (§II-B3): messages between ranks on the same node
  use ``alpha_intra``/``beta_intra``.  ``intra_kind="dedicated"`` models
  fully connected per-pair links (Polaris NVLink); ``"shared"`` models a
  per-node fabric with ``intra_channels`` concurrent channels (Frontier
  Infinity Fabric).  The intra/inter asymmetry is what k-ring exploits
  (Fig. 8c) and its absence is why k-ring is flat on Polaris (Fig. 11c).
* **Dragonfly topology** (§II-B1): optional; nodes are grouped, and
  messages between groups pay ``alpha_global`` extra latency and contend
  for per-group global-link channels — the global congestion term that
  penalizes algorithms flooding the network with ``p·(k-1)`` simultaneous
  messages per round.
* **Reduction cost** γ: reducing an incoming payload occupies the
  receiving rank's compute engine for ``gamma * nbytes``, serialized.

All times are in **seconds**, bandwidths in **seconds per byte**; the
constructors in :mod:`repro.simnet.machines` accept the friendlier µs and
GiB/s units.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import MachineError

__all__ = ["DragonflySpec", "MachineSpec", "us", "GiBps"]


def us(x: float) -> float:
    """Microseconds → seconds."""
    return x * 1e-6


def GiBps(x: float) -> float:
    """GiB/s → seconds-per-byte (β)."""
    if x <= 0:
        raise MachineError(f"bandwidth must be positive, got {x}")
    return 1.0 / (x * 1024**3)


@dataclass(frozen=True)
class DragonflySpec:
    """Dragonfly network layer: groups of nodes with global links.

    Attributes
    ----------
    nodes_per_group:
        Electrical-group size; intra-group messages pay only
        ``alpha_inter``.
    alpha_global:
        Extra latency (s) for messages crossing groups (the optical hop).
    global_channels:
        Concurrent message slots on a group's global links (egress and
        ingress pools of this size per group); ``None`` disables global
        contention, leaving only the latency adder.
    """

    nodes_per_group: int
    alpha_global: float = 0.0
    global_channels: Optional[int] = None

    def __post_init__(self) -> None:
        if self.nodes_per_group < 1:
            raise MachineError("nodes_per_group must be >= 1")
        if self.alpha_global < 0:
            raise MachineError("alpha_global must be >= 0")
        if self.global_channels is not None and self.global_channels < 1:
            raise MachineError("global_channels must be >= 1 or None")


@dataclass(frozen=True)
class MachineSpec:
    """Complete parameterization of a simulated machine.

    See the module docstring for the physical meaning of each group of
    fields.  Use :func:`dataclasses.replace` (re-exported as
    :meth:`with_`) to derive variants for ablations.
    """

    name: str
    nodes: int
    ppn: int

    # Internode network
    alpha_inter: float
    beta_inter: float
    nic_ports: int = 1
    port_msg_overhead: float = 0.0

    # Intranode fabric
    alpha_intra: float = 0.0
    beta_intra: float = 0.0
    intra_kind: str = "dedicated"  # "dedicated" | "shared"
    intra_channels: int = 8
    intra_msg_overhead: float = 0.0

    # Per-rank software costs
    injection_overhead: float = 0.0
    gamma: float = 0.0

    # Optional topology layer
    dragonfly: Optional[DragonflySpec] = None

    # Rank→node placement: "block" packs consecutive ranks onto a node
    # (the job-launcher default the paper's experiments use);
    # "round_robin" scatters consecutive ranks across nodes — modeling the
    # dispersed placements §VI-C3 blames for k-ring's irrelevance in the
    # 1-process-per-node runs on a busy 9,408-node machine.
    placement: str = "block"

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.ppn < 1:
            raise MachineError(
                f"{self.name}: nodes and ppn must be >= 1 "
                f"(got {self.nodes}, {self.ppn})"
            )
        for attr in (
            "alpha_inter",
            "beta_inter",
            "alpha_intra",
            "beta_intra",
            "port_msg_overhead",
            "intra_msg_overhead",
            "injection_overhead",
            "gamma",
        ):
            if getattr(self, attr) < 0:
                raise MachineError(f"{self.name}: {attr} must be >= 0")
        if self.nic_ports < 1:
            raise MachineError(f"{self.name}: nic_ports must be >= 1")
        if self.intra_kind not in ("dedicated", "shared"):
            raise MachineError(
                f"{self.name}: intra_kind must be 'dedicated' or 'shared', "
                f"got {self.intra_kind!r}"
            )
        if self.intra_channels < 1:
            raise MachineError(f"{self.name}: intra_channels must be >= 1")
        if self.dragonfly and self.nodes % self.dragonfly.nodes_per_group:
            raise MachineError(
                f"{self.name}: {self.nodes} nodes do not fill dragonfly "
                f"groups of {self.dragonfly.nodes_per_group}"
            )
        if self.placement not in ("block", "round_robin"):
            raise MachineError(
                f"{self.name}: placement must be 'block' or 'round_robin', "
                f"got {self.placement!r}"
            )

    # ------------------------------------------------------------------

    @property
    def nranks(self) -> int:
        """Total MPI processes the machine hosts (block rank placement)."""
        return self.nodes * self.ppn

    def node_of(self, rank: int) -> int:
        """Node hosting ``rank`` under this machine's placement.

        Block placement puts ranks 0..ppn-1 on node 0 and so on (the
        Frontier/Polaris launcher default); round-robin strides consecutive
        ranks across nodes.
        """
        if not 0 <= rank < self.nranks:
            raise MachineError(f"rank {rank} out of range for {self.name}")
        if self.placement == "round_robin":
            return rank % self.nodes
        return rank // self.ppn

    def group_of(self, node: int) -> int:
        """Dragonfly group of a node (0 when no dragonfly layer)."""
        if self.dragonfly is None:
            return 0
        return node // self.dragonfly.nodes_per_group

    def same_node(self, a: int, b: int) -> bool:
        """True if ranks ``a`` and ``b`` share a node (intranode link)."""
        return self.node_of(a) == self.node_of(b)

    def crosses_groups(self, a: int, b: int) -> bool:
        """True if ranks ``a`` and ``b`` sit in different dragonfly groups."""
        if self.dragonfly is None:
            return False
        return self.group_of(self.node_of(a)) != self.group_of(self.node_of(b))

    def with_(self, **changes: object) -> "MachineSpec":
        """Derive a modified spec (``dataclasses.replace`` convenience)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line summary for reports."""
        df = (
            f", dragonfly({self.dragonfly.nodes_per_group}/group)"
            if self.dragonfly
            else ""
        )
        return (
            f"{self.name}: {self.nodes} nodes × {self.ppn} ppn, "
            f"{self.nic_ports} ports{df}"
        )
