"""Class-collapsed discrete-event simulation: one representative per
rank-equivalence class.

The materialized engine (:mod:`repro.simnet.simulate`) spawns one DES
process per rank and one per message — cost linear in ``p``.  On
symmetric topologies the partition computed by
:mod:`repro.compile.classes` proves that all members of a class execute
isomorphic programs against isomorphic peers, so their event timings are
identical: it suffices to simulate **one representative rank per class**
and fan the per-class results back out to all ``p`` ranks with one NumPy
gather (:class:`~repro.simnet.engine.ClassBatch`).

Soundness rests on two facts the classifier verifies:

* every resource in an eligible machine is **private to one rank**
  (one rank per node, no shared intranode fabric or dragonfly channel
  pools — :func:`repro.compile.classes.machine_asymmetry`), so a
  representative's private port/compute resources see exactly the
  contention the real rank's would;
* for every (class, send op) pair the matched receives land in exactly
  one receiver class with a 1:1 sender↔receiver bijection, so
  redirecting the representative's send to the receiver class's
  representative preserves both endpoints' event structure.

Costs follow the materialized engine's recipe *exactly* (same hold,
latency, and reduction terms, same acquire order, same trigger points);
the golden-grid suite pins bit-identical results at small ``p``.  The
asymmetric features — noise, faults, timelines, custom block maps —
are not modeled here; the dispatcher in
:func:`repro.simnet.simulate.simulate` routes those runs to the
materialized engine instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..compile.classes import LINK_GLOBAL, ClassProgram, RankClasses
from ..compile.program import OP_RECV, OP_REDUCE_RECV, OP_SEND
from ..errors import ClassAnalysisError, MachineError
from ..obs import Obs, get_obs
from .engine import Acquire, AllOf, ClassBatch, Engine, Event, Resource, Timeout
from .machine import MachineSpec
from .simulate import SimResult

__all__ = ["simulate_collapsed"]


class _CMsg:
    """One representative message: class→class, standing for ``size``
    identical rank→rank messages."""

    __slots__ = (
        "nbytes",
        "reduce",
        "link",
        "src_cls",
        "dst_cls",
        "send_posted",
        "recv_posted",
        "send_done",
        "recv_done",
    )

    def __init__(self, engine: Engine, nbytes: int, reduce: bool, link: int,
                 src_cls: int, dst_cls: int) -> None:
        self.nbytes = nbytes
        self.reduce = reduce
        self.link = link
        self.src_cls = src_cls
        self.dst_cls = dst_cls
        self.send_posted = Event(engine)
        self.recv_posted = Event(engine)
        self.send_done = Event(engine)
        self.recv_done = Event(engine)


def _build_messages(
    engine: Engine, classes: RankClasses, nbytes: int
) -> Tuple[List[Dict[int, _CMsg]], List[Dict[int, _CMsg]]]:
    """Per class: op-index → message maps for sends (out) and recvs (in).

    Messages are created iterating classes in ascending class order and
    ops in program order — the same creation order the representatives'
    traffic would take in the materialized engine, which pins identical
    FIFO tie-breaking on the event heap.  Raises
    :class:`~repro.errors.ClassAnalysisError` if the redirection tables
    do not cover every receive exactly once (defensive: :func:`classify`
    already verified the bijection).
    """
    out_msg: List[Dict[int, _CMsg]] = [{} for _ in classes.classes]
    in_msg: List[Dict[int, _CMsg]] = [{} for _ in classes.classes]
    per_op_bytes = [
        c.op_bytes(nbytes, classes.nblocks) for c in classes.classes
    ]
    for ci, cls in enumerate(classes.classes):
        kinds = cls.kinds
        for j in range(cls.nops):
            if kinds[j] != OP_SEND:
                continue
            target = cls.send_target[j]
            if target is None:
                raise ClassAnalysisError(
                    f"class {ci} send op {j} has no redirection target"
                )
            tc, tj = target
            tkinds = classes.classes[tc].kinds
            if tj < 0 or tj >= len(tkinds) or tkinds[tj] not in (
                OP_RECV, OP_REDUCE_RECV
            ):
                raise ClassAnalysisError(
                    f"class {ci} send op {j} targets class {tc} op {tj}, "
                    f"which is not a receive"
                )
            if tj in in_msg[tc]:
                raise ClassAnalysisError(
                    f"class {tc} recv op {tj} matched by two sends"
                )
            msg = _CMsg(
                engine,
                nbytes=int(per_op_bytes[ci][j]),
                reduce=bool(tkinds[tj] == OP_REDUCE_RECV),
                link=int(cls.link[j]),
                src_cls=ci,
                dst_cls=tc,
            )
            out_msg[ci][j] = msg
            in_msg[tc][tj] = msg
    for ci, cls in enumerate(classes.classes):
        kinds = cls.kinds
        for j in range(cls.nops):
            if kinds[j] in (OP_RECV, OP_REDUCE_RECV) and j not in in_msg[ci]:
                raise ClassAnalysisError(
                    f"class {ci} recv op {j} is not covered by any send"
                )
    return out_msg, in_msg


def simulate_collapsed(
    classes: RankClasses,
    machine: MachineSpec,
    nbytes: int,
    *,
    schedule_desc: str = "",
    obs: Optional[Obs] = None,
) -> SimResult:
    """Simulate one representative per class; fan results out to all ranks.

    ``classes`` must come from :func:`repro.compile.classes.classify` for
    this machine and a total with the same ``nbytes % nblocks`` residue.
    Returns a :class:`~repro.simnet.simulate.SimResult` whose
    ``rank_times`` is a ``numpy`` array (``expand``-ed per-class times)
    and whose traffic counters are class-size-weighted totals — the same
    numbers the materialized engine reports for the same run.
    """
    if machine.nranks != classes.nranks:
        raise MachineError(
            f"{machine.name} hosts {machine.nranks} ranks but the class "
            f"partition covers {classes.nranks}"
        )
    if nbytes < 0:
        raise MachineError(f"nbytes must be >= 0, got {nbytes}")
    if nbytes % classes.nblocks != classes.residue:
        raise ClassAnalysisError(
            f"partition was built for residue {classes.residue} but "
            f"nbytes={nbytes} has residue {nbytes % classes.nblocks}"
        )
    scope = get_obs(obs)
    engine = Engine(obs=scope)
    df = machine.dragonfly
    nclasses = classes.nclasses
    sizes = np.array([c.size for c in classes.classes], dtype=np.int64)
    batch = ClassBatch(classes.labels, sizes)

    # Private per-representative resources: eligibility (machine_asymmetry)
    # guarantees the real machine shares nothing between ranks, so one
    # send/recv port pool and one compute unit per class is exact.
    send_ports = [
        Resource(engine, machine.nic_ports, f"sendport[c{c}]")
        for c in range(nclasses)
    ]
    recv_ports = [
        Resource(engine, machine.nic_ports, f"recvport[c{c}]")
        for c in range(nclasses)
    ]
    compute = [Resource(engine, 1, f"compute[c{c}]") for c in range(nclasses)]

    out_msg, in_msg = _build_messages(engine, classes, nbytes)

    # Class-size-weighted traffic accounting (ppn == 1: all inter-node).
    n_messages = 0
    stats = {"inter_messages": 0, "global_messages": 0, "inter_bytes": 0}
    for ci, msgs in enumerate(out_msg):
        weight = int(sizes[ci])
        for msg in msgs.values():
            n_messages += weight
            stats["inter_messages"] += weight
            stats["inter_bytes"] += msg.nbytes * weight
            if msg.link == LINK_GLOBAL:
                stats["global_messages"] += weight

    rep_times = np.zeros(nclasses, dtype=np.float64)
    o = machine.injection_overhead

    def rank_proc(ci: int, cls: ClassProgram):
        outs = out_msg[ci]
        ins = in_msg[ci]
        for step in cls.feed:
            waits: List[Event] = []
            for is_send, j in step:
                if o:
                    yield Timeout(o)
                if is_send:
                    msg = outs[j]
                    msg.send_posted.trigger()
                    waits.append(msg.send_done)
                else:
                    msg = ins[j]
                    msg.recv_posted.trigger()
                    waits.append(msg.recv_done)
            if waits:
                yield AllOf(waits)
        rep_times[ci] = engine.now

    def transfer_proc(msg: _CMsg):
        yield AllOf([msg.send_posted, msg.recv_posted])
        # Mirrors the materialized engine's internode recipe exactly
        # (ppn == 1 rules out the intranode branch; noise/fault factors
        # are handled by falling back before we get here).
        hold = machine.port_msg_overhead + msg.nbytes * machine.beta_inter
        held = [send_ports[msg.src_cls], recv_ports[msg.dst_cls]]
        alpha = machine.alpha_inter
        if msg.link == LINK_GLOBAL and df is not None:
            alpha += df.alpha_global
        for res in held:
            yield Acquire(res)
        yield Timeout(hold)
        for res in reversed(held):
            res.release()
        msg.send_done.trigger()
        yield Timeout(alpha)
        if msg.reduce and machine.gamma > 0 and msg.nbytes > 0:
            yield Acquire(compute[msg.dst_cls])
            yield Timeout(machine.gamma * msg.nbytes)
            compute[msg.dst_cls].release()
        msg.recv_done.trigger()

    # Creation order mirrors the materialized engine: all transfers first
    # (classes ascending, ops in program order), then the rank processes
    # in ascending representative-rank order — class ids are already
    # ordered by representative rank.
    for ci in range(nclasses):
        for j in sorted(out_msg[ci]):
            engine.process(transfer_proc(out_msg[ci][j]), name=f"xfer[c{ci}:{j}]")
    for ci, cls in enumerate(classes.classes):
        engine.process(rank_proc(ci, cls), name=f"rank[c{ci}={cls.rep}]")

    if scope.enabled:
        with scope.span(
            "simulate",
            schedule=schedule_desc,
            machine=machine.name,
            nbytes=nbytes,
            engine="collapsed",
            nclasses=nclasses,
        ):
            makespan = engine.run()
            m = scope.metrics
            m.counter("repro_sim_runs_total").inc()
            for link, count in (
                (
                    "inter",
                    stats["inter_messages"] - stats["global_messages"],
                ),
                ("global", stats["global_messages"]),
            ):
                if count:
                    m.counter(
                        "repro_sim_messages_total", link=link
                    ).inc(count)
    else:
        makespan = engine.run()

    return SimResult(
        time=makespan,
        rank_times=batch.expand(rep_times),
        messages=n_messages,
        intra_messages=0,
        inter_messages=stats["inter_messages"],
        global_messages=stats["global_messages"],
        intra_bytes=0,
        inter_bytes=stats["inter_bytes"],
        engine="collapsed",
        nclasses=nclasses,
    )
