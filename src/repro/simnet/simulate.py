"""Simulate a collective schedule on a modeled machine.

Maps the schedule IR onto the DES engine: one process per rank walks its
program paying per-op injection overhead and waiting on step completions;
one process per message waits for both endpoints to post, competes for the
link resources its path needs (NIC ports, intranode fabric channels,
dragonfly global channels), holds them for the serialization time, and
delivers after the wire latency, charging receive-side reduction compute
where applicable.

Cost recipe per message of ``n`` bytes (all terms from the
:class:`~repro.simnet.machine.MachineSpec`):

========================  ====================================================
phase                      cost
========================  ====================================================
posting (per endpoint)     ``injection_overhead`` (serial on the rank's CPU)
port/channel occupancy     ``msg_overhead + n·β`` on every pool on the path
wire latency               ``α`` (+ ``α_global`` across dragonfly groups)
reduction (reduce recvs)   ``γ·n`` serialized on the receiving rank
========================  ====================================================

Ports are held only for the *serialization* time, so latencies pipeline
across back-to-back messages — the LogGP-style decomposition that lets a
k-nomial root overlap ``k-1`` small sends (§II-B2) while still charging
``⌈(k-1)/ports⌉`` bandwidth waves for large ones.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..core.schedule import CopyOp, RecvOp, Schedule, SendOp
from ..errors import ClassAnalysisError, MachineError
from ..faults.plan import FaultPlan
from ..obs import Obs, get_obs
from ..faults.sim import analyze, match_messages
from .engine import Acquire, AllOf, Engine, Event, Resource, Timeout
from .machine import MachineSpec
from .noise import NoiseModel

__all__ = ["SimResult", "simulate", "traffic_summary", "TrafficSummary",
           "ENGINES"]

#: Valid values for ``simulate(engine=...)`` and the CLIs' ``--engine``.
ENGINES = ("auto", "materialized", "collapsed")

#: Below this rank count ``engine="auto"`` runs the materialized engine
#: even when the schedule is collapsible — class analysis overhead beats
#: the savings at small p, and small-p runs are the compatibility surface
#: the golden corpus pins.  Lazy (generator-program) schedules ignore the
#: threshold: they exist precisely to avoid materializing p structures.
_AUTO_COLLAPSE_MIN_RANKS = 256


@dataclass
class SimResult:
    """Outcome of one simulated collective."""

    time: float                      # makespan (seconds)
    rank_times: List[float]          # per-rank completion times
    messages: int                    # point-to-point messages delivered
    intra_messages: int
    inter_messages: int
    global_messages: int             # subset of inter crossing dragonfly groups
    intra_bytes: int
    inter_bytes: int
    timeline: Optional[List[Tuple]] = None  # (src, dst, bytes, t_xfer, t_done, link)
    retransmissions: int = 0         # lost transmissions recovered by retry
    failed_ranks: Tuple[int, ...] = ()   # ranks crashed by the fault plan
    stalled_ranks: Tuple[int, ...] = ()  # ranks blocked forever on a dead peer
    engine: str = "materialized"     # engine that produced this result
    fallback: Optional[str] = None   # why a collapsed request fell back
    nclasses: Optional[int] = None   # class count (collapsed engine only)

    @property
    def time_us(self) -> float:
        """Makespan in microseconds (the unit the paper plots)."""
        return self.time * 1e6

    @property
    def complete(self) -> bool:
        """Whether every rank finished (no crash / stall under faults)."""
        return not self.failed_ranks and not self.stalled_ranks


class _Msg:
    __slots__ = (
        "src",
        "dst",
        "nbytes",
        "reduce",
        "index",
        "seq",
        "send_posted",
        "recv_posted",
        "send_done",
        "recv_done",
    )

    def __init__(self, engine: Engine, src: int, dst: int, nbytes: int,
                 reduce: bool, index: int, seq: int) -> None:
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.reduce = reduce
        self.index = index
        self.seq = seq  # per-(src, dst) link FIFO sequence number
        self.send_posted = Event(engine)
        self.recv_posted = Event(engine)
        self.send_done = Event(engine)
        self.recv_done = Event(engine)


def _collapse_blockers(
    schedule,
    machine: MachineSpec,
    *,
    noise,
    faults,
    collect_timeline: bool,
    block_map,
    compiled: bool,
) -> Optional[str]:
    """Why this run cannot use the collapsed engine, or ``None``.

    Any per-rank asymmetry breaks the class-equivalence argument: noise
    draws per-message factors, fault plans target individual ranks/links,
    timelines and custom block maps need per-rank identity, and an
    interpreted (``compiled=False``) run has no flat tables to classify.
    Nonzero roots are rejected by policy — a rooted collective at
    ``root=r`` is isomorphic to ``root=0``, so rather than special-case
    the relabeling the dispatcher routes it to the materialized engine.
    """
    if noise is not None:
        return "noise model active"
    if faults is not None:
        return "fault plan present"
    if collect_timeline:
        return "timeline collection requested"
    if block_map is not None:
        return "custom block map"
    if not compiled:
        return "interpreted feed requested (compiled=False)"
    root = getattr(schedule, "root", None)
    if root not in (None, 0):
        return f"nonzero root {root}"
    from ..compile.classes import machine_asymmetry

    return machine_asymmetry(machine)


def simulate(
    schedule: Schedule,
    machine: MachineSpec,
    nbytes: int,
    *,
    noise: Optional[NoiseModel] = None,
    faults: Optional[FaultPlan] = None,
    collect_timeline: bool = False,
    block_map=None,
    compiled: bool = True,
    engine: str = "auto",
    obs: Optional[Obs] = None,
) -> SimResult:
    """Simulate ``schedule`` moving ``nbytes`` (total buffer size) on
    ``machine``; returns the makespan and traffic accounting.

    The machine must host exactly ``schedule.nranks`` processes — build
    machines with the right ``nodes × ppn`` geometry (see
    :mod:`repro.simnet.machines`).

    With a :class:`~repro.faults.plan.FaultPlan`, messages traverse faulty
    links: each dropped transmission charges its serialization plus a
    machine-model retransmission timeout (≈ one RTT, exponentially backed
    off), duplicates charge extra serialization, degraded links slow their
    own traffic, and stragglers scale their rank's injection/reduction
    cost.  Crashed ranks — and ranks dragged down waiting on them — yield
    a clean partial-completion :class:`SimResult` (``complete`` is False,
    their ``rank_times`` are ``inf``) instead of the engine's blanket
    deadlock :class:`~repro.errors.MachineError`.

    ``obs``: observability scope (default: the process-global one).  When
    enabled, the run is wrapped in a ``simulate`` span, traffic and
    retransmission counters are recorded, and — with
    ``collect_timeline=True`` — the message timeline is attached to the
    span so :mod:`repro.obs.export` can merge simulated traffic into the
    host-side Perfetto trace.  Instrumentation never changes a simulated
    cost (pinned by ``tests/properties/test_obs_transparency.py``).

    ``compiled=True`` (the default) feeds the rank processes from the
    cached compiled program's preflattened ``(is_send, peer)`` step feed
    (:meth:`repro.compile.program.CompiledSchedule.sim_feed`) instead of
    re-interpreting the IR per simulated op.  The walk is identical by
    construction — raw step boundaries, same op order, copies free either
    way — so every cost, timeline entry, and fault fate is bit-identical
    (pinned by the differential suite and the golden-cost corpus).

    ``engine`` selects the simulation core.  ``"materialized"`` is the
    classic one-process-per-rank engine described above;
    ``"collapsed"`` simulates one representative per rank-equivalence
    class (:mod:`repro.simnet.collapsed`) and fans results back out —
    bit-identical on symmetric inputs, sublinear in ``p``; ``"auto"``
    (the default) picks collapsed when the run is symmetric (no noise,
    faults, timeline, custom block map, or nonzero root; an eligible
    machine) and large enough to profit, materialized otherwise.  An
    explicit ``engine="collapsed"`` request on an asymmetric run does not
    fail: it falls back to the materialized engine and records why in
    ``SimResult.fallback``.  ``machine`` may also be a registry name
    (e.g. ``"dragonfly-1024"``) — resolved via
    :func:`repro.simnet.machines.get`.

    Lazy generator schedules (:mod:`repro.core.lazy`, marked
    ``is_lazy``) are classified directly without materializing per-rank
    step lists; when such a schedule must take the materialized path it
    is first expanded via its ``materialize()`` hook.
    """
    if isinstance(machine, str):
        from .machines import get as _get_machine

        machine = _get_machine(machine)
    if engine not in ENGINES:
        raise MachineError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    p = schedule.nranks
    if machine.nranks != p:
        raise MachineError(
            f"{machine.name} hosts {machine.nranks} ranks but schedule "
            f"{schedule.describe()} needs {p}"
        )
    if nbytes < 0:
        raise MachineError(f"nbytes must be >= 0, got {nbytes}")
    if block_map is not None and block_map.nblocks != schedule.nblocks:
        raise MachineError(
            f"block map has {block_map.nblocks} blocks but the "
            f"schedule uses {schedule.nblocks}"
        )

    # ------------------------------------------------------------------
    # Engine dispatch: try the class-collapsed core when requested and
    # eligible; fall back to the materialized engine below, recording why.
    # ------------------------------------------------------------------
    lazy = getattr(schedule, "is_lazy", False)
    fallback: Optional[str] = None
    if engine in ("auto", "collapsed"):
        reason = _collapse_blockers(
            schedule,
            machine,
            noise=noise,
            faults=faults,
            collect_timeline=collect_timeline,
            block_map=block_map,
            compiled=compiled,
        )
        attempt = reason is None
        if attempt and engine == "auto" and not lazy and (
            p < _AUTO_COLLAPSE_MIN_RANKS
        ):
            attempt = False  # policy choice at small p, not a fallback
        elif reason is not None and engine == "collapsed":
            fallback = reason
        if attempt:
            from .collapsed import simulate_collapsed

            try:
                if lazy:
                    classes = schedule.classes(machine, nbytes)
                else:
                    from ..compile.cache import get_or_classify

                    classes = get_or_classify(schedule, machine, nbytes)
                # Auto policy: when the partition is degenerate (every
                # rank its own class — butterfly exchanges whose partner
                # *order* is rank-dependent), the collapsed core would
                # just re-enact the materialized run with extra batching
                # overhead.  Simulation cost should track class count,
                # so a partition that doesn't collapse isn't worth the
                # detour.  An explicit engine="collapsed" request still
                # runs it (the caller asked for that core, and results
                # are bit-identical either way).
                if engine == "collapsed" or classes.nclasses < p:
                    return simulate_collapsed(
                        classes,
                        machine,
                        nbytes,
                        schedule_desc=schedule.describe(),
                        obs=obs,
                    )
            except ClassAnalysisError as exc:
                fallback = str(exc)

    if lazy:
        schedule = schedule.materialize()
    if block_map is None:
        blocks = schedule.block_map(nbytes)
    else:
        blocks = block_map
    scope = get_obs(obs)
    engine = Engine(obs=scope)
    df = machine.dragonfly

    send_ports = [
        Resource(engine, machine.nic_ports, f"sendport[{n}]")
        for n in range(machine.nodes)
    ]
    recv_ports = [
        Resource(engine, machine.nic_ports, f"recvport[{n}]")
        for n in range(machine.nodes)
    ]
    intra_fabric: Optional[List[Resource]] = None
    if machine.intra_kind == "shared" and machine.ppn > 1:
        intra_fabric = [
            Resource(engine, machine.intra_channels, f"fabric[{n}]")
            for n in range(machine.nodes)
        ]
    compute = [Resource(engine, 1, f"compute[{r}]") for r in range(p)]
    egress: Optional[List[Resource]] = None
    ingress: Optional[List[Resource]] = None
    if df is not None and df.global_channels is not None:
        ngroups = machine.nodes // df.nodes_per_group
        egress = [
            Resource(engine, df.global_channels, f"egress[{g}]")
            for g in range(ngroups)
        ]
        ingress = [
            Resource(engine, df.global_channels, f"ingress[{g}]")
            for g in range(ngroups)
        ]

    # ------------------------------------------------------------------
    # Match sends and receives into messages (FIFO per channel), mirroring
    # the data executors' matching exactly.  The structural matching lives
    # in repro.faults.sim.match_messages so the static fault analysis and
    # the recovery layer's simulated failure detector see the same
    # messages this engine exchanges.
    # ------------------------------------------------------------------
    metas = match_messages(schedule)
    send_q: Dict[Tuple[int, int], Deque[_Msg]] = {}
    recv_q: Dict[Tuple[int, int], Deque[_Msg]] = {}
    messages: List[_Msg] = []
    for meta in metas:
        msg = _Msg(
            engine,
            src=meta.src,
            dst=meta.dst,
            nbytes=blocks.bytes_of(meta.blocks),
            reduce=meta.reduce,
            index=meta.index,
            seq=meta.seq,
        )
        messages.append(msg)
        send_q.setdefault((meta.src, meta.dst), deque()).append(msg)
        recv_q.setdefault((meta.src, meta.dst), deque()).append(msg)

    # ------------------------------------------------------------------
    # Fault plan: pre-compute the fate of messages and ranks (decisions
    # are deterministic, so fate is static even though costs are dynamic).
    # ------------------------------------------------------------------
    faults_active = faults is not None and faults.is_active
    statics = analyze(schedule, faults, metas) if faults_active else None
    lossy = faults_active and faults.has_loss

    # ------------------------------------------------------------------
    # Traffic accounting and optional timeline
    # ------------------------------------------------------------------
    stats = {
        "intra_messages": 0,
        "inter_messages": 0,
        "global_messages": 0,
        "intra_bytes": 0,
        "inter_bytes": 0,
        "retransmissions": 0,
    }
    timeline: Optional[List[Tuple]] = [] if collect_timeline else None
    rank_times = [0.0] * p

    o = machine.injection_overhead

    # Compiled feed: per rank, per raw step, (is_send, peer) tuples with
    # copies already stripped — the same walk rank_proc does over the IR,
    # minus the isinstance dispatch.  Cost-transparent by construction.
    feed = None
    if compiled:
        from ..compile import get_or_compile

        feed = get_or_compile(schedule).sim_feed()

    def rank_proc(rank: int):
        prog = schedule.programs[rank]
        straggle = faults.straggler_factor(rank) if faults_active else 1.0
        o_r = o * straggle
        limit = statics.post_limit[rank] if statics else len(prog.steps)
        if feed is not None:
            rank_feed = feed[rank]
            for step_idx in range(limit):
                waits: List[Event] = []
                for is_send, peer in rank_feed[step_idx]:
                    if o_r:
                        yield Timeout(o_r)
                    if is_send:
                        msg = send_q[(rank, peer)].popleft()
                        msg.send_posted.trigger()
                        done = msg.send_done
                    else:
                        msg = recv_q[(peer, rank)].popleft()
                        msg.recv_posted.trigger()
                        done = msg.recv_done
                    # Doomed messages never complete; a stalled rank posts
                    # its final step's ops but waits only on the live ones
                    # (its blocked-forever state is recorded statically).
                    if statics is None or msg.index not in statics.doomed:
                        waits.append(done)
                if waits:
                    yield AllOf(waits)
        else:
            for step_idx in range(limit):
                step = prog.steps[step_idx]
                waits = []
                for op in step.ops:
                    if isinstance(op, SendOp):
                        if o_r:
                            yield Timeout(o_r)
                        msg = send_q[(rank, op.peer)].popleft()
                        msg.send_posted.trigger()
                        # Doomed messages never complete; a stalled rank
                        # posts its final step's ops but waits only on the
                        # live ones (its blocked-forever state is recorded
                        # statically).
                        if statics is None or msg.index not in statics.doomed:
                            waits.append(msg.send_done)
                    elif isinstance(op, RecvOp):
                        if o_r:
                            yield Timeout(o_r)
                        msg = recv_q[(op.peer, rank)].popleft()
                        msg.recv_posted.trigger()
                        if statics is None or msg.index not in statics.doomed:
                            waits.append(msg.recv_done)
                    # CopyOp: modeled as free (intra-GPU memcpy is off the
                    # critical path at collective granularity).
                if waits:
                    yield AllOf(waits)
        if statics is not None and not statics.completes(
            rank, len(prog.steps)
        ):
            rank_times[rank] = math.inf
        else:
            rank_times[rank] = engine.now

    def transfer_proc(msg: _Msg):
        if statics is not None and msg.index in statics.doomed:
            return
        yield AllOf([msg.send_posted, msg.recv_posted])
        factor = noise.factor(msg.index) if noise is not None else 1.0
        if faults_active:
            factor *= faults.bandwidth_penalty(msg.src, msg.dst)
            fdelay = faults.delay(msg.src, msg.dst, msg.seq)
            dups = faults.duplicates(msg.src, msg.dst, msg.seq)
            attempts = (
                faults.attempts_needed(msg.src, msg.dst, msg.seq)
                if lossy
                else 0
            )
        else:
            fdelay = 1.0
            dups = 0
            attempts = 0
        src_node = machine.node_of(msg.src)
        dst_node = machine.node_of(msg.dst)
        held: List[Resource] = []
        if src_node == dst_node:
            link = "intra"
            stats["intra_messages"] += 1
            stats["intra_bytes"] += msg.nbytes
            hold = (
                machine.intra_msg_overhead + msg.nbytes * machine.beta_intra
            ) * factor
            if intra_fabric is not None:
                held = [intra_fabric[src_node]]
            alpha = machine.alpha_intra * factor
        else:
            crossing = machine.crosses_groups(msg.src, msg.dst)
            link = "global" if crossing else "inter"
            stats["inter_messages"] += 1
            stats["inter_bytes"] += msg.nbytes
            if crossing:
                stats["global_messages"] += 1
            hold = (
                machine.port_msg_overhead + msg.nbytes * machine.beta_inter
            ) * factor
            # Fixed global acquisition order prevents hold-and-wait cycles.
            held = [send_ports[src_node], recv_ports[dst_node]]
            if crossing and egress is not None and ingress is not None:
                g_src = machine.group_of(src_node)
                g_dst = machine.group_of(dst_node)
                held += [egress[g_src], ingress[g_dst]]
            alpha = machine.alpha_inter * factor
            if crossing and df is not None:
                alpha += df.alpha_global * factor
        alpha *= fdelay
        if faults_active:
            # A straggler host is slow to push messages onto the wire:
            # sender-side software latency scales with its slowdown.
            alpha *= faults.straggler_factor(msg.src)
        # Lost transmissions: each charges its serialization (the bytes
        # really crossed the wire before vanishing) plus a retransmission
        # timeout derived from the machine model — one round trip plus the
        # serialization time, exponentially backed off per the plan's
        # retry policy.
        rto = 2.0 * alpha + hold
        for attempt in range(attempts):
            for res in held:
                yield Acquire(res)
            yield Timeout(hold)
            for res in reversed(held):
                res.release()
            yield Timeout(rto * faults.retry.backoff**attempt)
            stats["retransmissions"] += 1
        # The surviving transmission; duplicates ride along, charging
        # their own serialization on the same links.
        for res in held:
            yield Acquire(res)
        t0 = engine.now
        yield Timeout(hold * (1 + dups))
        for res in reversed(held):
            res.release()
        msg.send_done.trigger()
        yield Timeout(alpha)
        if msg.reduce and machine.gamma > 0 and msg.nbytes > 0:
            straggle = (
                faults.straggler_factor(msg.dst) if faults_active else 1.0
            )
            yield Acquire(compute[msg.dst])
            yield Timeout(machine.gamma * msg.nbytes * factor * straggle)
            compute[msg.dst].release()
        if timeline is not None:
            timeline.append((msg.src, msg.dst, msg.nbytes, t0, engine.now, link))
        msg.recv_done.trigger()

    for msg in messages:
        engine.process(transfer_proc(msg), name=f"xfer{msg.index}")
    for rank in range(p):
        engine.process(rank_proc(rank), name=f"rank{rank}")

    if scope.enabled:
        with scope.span(
            "simulate",
            schedule=schedule.describe(),
            machine=machine.name,
            nbytes=nbytes,
        ):
            makespan = engine.run()
            m = scope.metrics
            m.counter("repro_sim_runs_total").inc()
            for link, count in (
                ("intra", stats["intra_messages"]),
                ("inter", stats["inter_messages"] - stats["global_messages"]),
                ("global", stats["global_messages"]),
            ):
                if count:
                    m.counter(
                        "repro_sim_messages_total", link=link
                    ).inc(count)
            if stats["retransmissions"]:
                m.counter("repro_faults_sim_retransmissions_total").inc(
                    stats["retransmissions"]
                )
            if timeline is not None:
                scope.tracer.attach_timeline(
                    timeline,
                    label=f"{schedule.describe()} n={nbytes}",
                    makespan=makespan,
                )
    else:
        makespan = engine.run()
    failed_ranks: Tuple[int, ...] = ()
    stalled_ranks: Tuple[int, ...] = ()
    if statics is not None:
        failed_ranks = tuple(sorted(statics.crashed))
        stalled_ranks = tuple(sorted(statics.stall_step))
    return SimResult(
        time=makespan,
        rank_times=rank_times,
        messages=len(messages),
        intra_messages=stats["intra_messages"],
        inter_messages=stats["inter_messages"],
        global_messages=stats["global_messages"],
        intra_bytes=stats["intra_bytes"],
        inter_bytes=stats["inter_bytes"],
        timeline=timeline,
        retransmissions=stats["retransmissions"],
        failed_ranks=failed_ranks,
        stalled_ranks=stalled_ranks,
        engine="materialized",
        fallback=fallback,
    )


@dataclass(frozen=True)
class TrafficSummary:
    """Static traffic analysis of a schedule on a machine (no simulation).

    Used by the data-volume benches that reproduce paper eqs. (13)/(14):
    k-ring's inter-group traffic reduction.
    """

    messages: int
    intra_messages: int
    inter_messages: int
    intra_bytes: int
    inter_bytes: int


def traffic_summary(
    schedule: Schedule, machine: MachineSpec, nbytes: int
) -> TrafficSummary:
    """Count messages/bytes by link class without running the simulator."""
    if machine.nranks != schedule.nranks:
        raise MachineError(
            f"{machine.name} hosts {machine.nranks} ranks but schedule "
            f"needs {schedule.nranks}"
        )
    blocks = schedule.block_map(nbytes)
    msgs = intra_m = inter_m = intra_b = inter_b = 0
    for prog in schedule.programs:
        for _, op in prog.iter_ops():
            if isinstance(op, SendOp):
                msgs += 1
                size = blocks.bytes_of(op.blocks)
                if machine.same_node(prog.rank, op.peer):
                    intra_m += 1
                    intra_b += size
                else:
                    inter_m += 1
                    inter_b += size
    return TrafficSummary(
        messages=msgs,
        intra_messages=intra_m,
        inter_messages=inter_m,
        intra_bytes=intra_b,
        inter_bytes=inter_b,
    )
