"""Timeline analysis and Chrome-trace export for simulated collectives.

``simulate(..., collect_timeline=True)`` records every message's transfer
window; this module turns those records into

* a ``chrome://tracing`` / Perfetto-compatible JSON file (one track per
  rank, message arrows as duration events) for visual inspection of how a
  schedule fills the network, and
* quantitative utilization summaries (per-link-class busy time, longest
  idle gap, per-rank receive load) used by the ablation benchmarks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from ..errors import TraceError
from .simulate import SimResult

__all__ = ["to_chrome_trace", "write_chrome_trace", "timeline_stats", "TimelineStats"]

TimelineEvent = Tuple[int, int, int, float, float, str]  # src,dst,bytes,t0,t1,link


def _require_timeline(result: SimResult) -> List[TimelineEvent]:
    # A missing timeline is a result-shape problem (the caller forgot
    # collect_timeline=True), not a machine-configuration one — hence
    # TraceError, not the MachineError this historically raised.
    if result.timeline is None:
        raise TraceError(
            "SimResult has no timeline — simulate with timeline=True "
            "(collect_timeline=True at the simnet layer)"
        )
    return list(result.timeline)


def to_chrome_trace(result: SimResult, *, time_scale: float = 1e6) -> Dict:
    """Convert a timeline into the Chrome trace-event JSON structure.

    Each message becomes a duration event on its *source* rank's track
    (pid 0, tid = rank), named ``src->dst (link)``, with byte count and
    link class in ``args``.  Times are scaled to microseconds by default.
    """
    events = []
    for src, dst, nbytes, t0, t1, link in _require_timeline(result):
        events.append(
            {
                "name": f"{src}->{dst} ({link})",
                "cat": link,
                "ph": "X",
                "ts": t0 * time_scale,
                "dur": max((t1 - t0) * time_scale, 1e-3),
                "pid": 0,
                "tid": src,
                "args": {"bytes": nbytes, "dst": dst, "link": link},
            }
        )
    for rank, end in enumerate(result.rank_times):
        events.append(
            {
                "name": "rank done",
                "cat": "completion",
                "ph": "i",
                "ts": end * time_scale,
                "pid": 0,
                "tid": rank,
                "s": "t",
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    result: SimResult, path: Union[str, Path], *, time_scale: float = 1e6
) -> Path:
    """Write the Chrome trace to ``path``; returns the path.

    Open the file at ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(result, time_scale=time_scale)))
    return path


@dataclass(frozen=True)
class TimelineStats:
    """Quantitative summary of a simulated timeline."""

    makespan: float
    busy_time: Dict[str, float]        # per link class, summed transfer time
    max_concurrent: int                # peak simultaneous transfers
    per_rank_recv_bytes: Tuple[int, ...]
    recv_imbalance: float              # max/mean inbound bytes (1.0 = even)

    def utilization(self, link: str) -> float:
        """Aggregate transfer-seconds per second of makespan for a link
        class (can exceed 1.0: many links run in parallel)."""
        if self.makespan <= 0:
            return 0.0
        return self.busy_time.get(link, 0.0) / self.makespan

    def to_dict(self) -> Dict:
        """Plain-dict form (shared stats protocol; JSON-serializable)."""
        return {
            "makespan": self.makespan,
            "busy_time": dict(self.busy_time),
            "max_concurrent": self.max_concurrent,
            "per_rank_recv_bytes": list(self.per_rank_recv_bytes),
            "recv_imbalance": self.recv_imbalance,
        }


def timeline_stats(result: SimResult, nranks: int) -> TimelineStats:
    """Compute :class:`TimelineStats` from a collected timeline."""
    timeline = _require_timeline(result)
    busy: Dict[str, float] = {}
    recv_bytes = [0] * nranks
    boundaries: List[Tuple[float, int]] = []
    for src, dst, nbytes, t0, t1, link in timeline:
        busy[link] = busy.get(link, 0.0) + (t1 - t0)
        recv_bytes[dst] += nbytes
        boundaries.append((t0, 1))
        boundaries.append((t1, -1))
    boundaries.sort()
    live = peak = 0
    for _, delta in boundaries:
        live += delta
        peak = max(peak, live)
    mean_recv = sum(recv_bytes) / nranks if nranks else 0.0
    imbalance = (max(recv_bytes) / mean_recv) if mean_recv else 1.0
    return TimelineStats(
        makespan=result.time,
        busy_time=busy,
        max_concurrent=peak,
        per_rank_recv_bytes=tuple(recv_bytes),
        recv_imbalance=imbalance,
    )
