"""Minimal process-oriented discrete-event simulation engine.

A deliberately small simpy-like core: *processes* are Python generators
that yield *waitables* (timeouts, events, resource acquisitions, or
conjunctions thereof), and the engine advances a global clock through a
binary heap of scheduled callbacks.  It exists so the network simulator
(:mod:`repro.simnet.simulate`) can express ranks, in-flight messages, and
contended resources (NIC ports, fabric channels, reduction engines) as
straightforward sequential code.

Determinism: the heap breaks time ties by insertion sequence number and
resources grant strictly FIFO, so a simulation is a pure function of its
inputs — property tests rely on this.

Performance notes (per the HPC guide: measure, then optimize).  The
engine is the inner loop of every sweep point, so the hot path is tuned
to touch each event O(1) times with as few allocations as possible:

* all hot classes use ``__slots__`` and heap records are plain
  ``(time, seq, fn)`` slots in a binary heap;
* an :class:`Event` stores zero or one callbacks inline and only
  allocates a list for the rare fan-out case;
* a :class:`Process` reuses one pre-bound resume callback for every
  timeout it ever waits on instead of closing over a fresh lambda;
* uncontended :class:`Acquire` requests are granted inline without
  allocating an :class:`Event` at all;
* the human-readable "what is this process waiting on" label is derived
  lazily from the stored waitable only when a deadlock diagnosis is
  actually printed — the fast path never formats strings.

These keep a million-message ring simulation within seconds.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from collections import deque

import numpy as np

from ..errors import MachineError
from ..obs import OBS

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "AllOf",
    "Acquire",
    "Resource",
    "Process",
    "ClassBatch",
]


class Event:
    """A one-shot trigger processes can wait on.

    Callback storage is adaptive: ``None`` (no waiter), a bare callable
    (the overwhelmingly common single-waiter case), or a list (fan-out).
    """

    __slots__ = ("engine", "triggered", "time", "_callbacks")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.triggered = False
        self.time: Optional[float] = None
        self._callbacks: Any = None

    def trigger(self) -> None:
        """Fire the event now; waiting processes resume at the current time."""
        if self.triggered:
            raise MachineError("event triggered twice")
        self.triggered = True
        self.time = self.engine.now
        callbacks, self._callbacks = self._callbacks, None
        if callbacks is None:
            return
        if isinstance(callbacks, list):
            for cb in callbacks:
                cb()
        else:
            callbacks()

    def on_trigger(self, cb: Callable[[], None]) -> None:
        if self.triggered:
            cb()
        elif self._callbacks is None:
            self._callbacks = cb
        elif isinstance(self._callbacks, list):
            self._callbacks.append(cb)
        else:
            self._callbacks = [self._callbacks, cb]


class Timeout:
    """Wait for a fixed simulated duration."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise MachineError(f"negative timeout {delay}")
        self.delay = delay


class AllOf:
    """Wait until every child waitable has completed."""

    __slots__ = ("children",)

    def __init__(self, children: List[Any]) -> None:
        self.children = children


class Acquire:
    """Request one unit of a :class:`Resource`; resumes once granted.

    The process owns the unit until it calls ``resource.release()``.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        self.resource = resource


class Resource:
    """A counted resource with strictly FIFO grant order.

    ``capacity`` units exist; :class:`Acquire` requests beyond capacity
    queue and are granted in request order as units are released.
    """

    __slots__ = ("engine", "name", "capacity", "in_use", "_waiters",
                 "total_grants", "total_wait")

    def __init__(self, engine: "Engine", capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise MachineError(f"resource {name!r} needs capacity >= 1")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Tuple[Callable[[], None], float]] = deque()
        # Occupancy statistics for utilization reports.
        self.total_grants = 0
        self.total_wait = 0.0

    def try_acquire(self) -> bool:
        """Grant a unit immediately if one is free (the no-event fast path)."""
        if self.in_use < self.capacity:
            self.in_use += 1
            self.total_grants += 1
            return True
        return False

    def acquire(self) -> Event:
        """Request a unit; the returned event fires when it is granted."""
        ev = Event(self.engine)
        if self.try_acquire():
            ev.trigger()
        else:
            self._waiters.append((ev.trigger, self.engine.now))
        return ev

    def _enqueue(self, cb: Callable[[], None]) -> None:
        """Queue a bare callback for the next free unit (no Event needed)."""
        self._waiters.append((cb, self.engine.now))

    def release(self) -> None:
        """Return a unit; the oldest waiter (if any) is granted immediately."""
        if self.in_use <= 0:
            raise MachineError(f"resource {self.name!r} released below zero")
        if self._waiters:
            cb, queued_at = self._waiters.popleft()
            self.total_grants += 1
            self.total_wait += self.engine.now - queued_at
            cb()  # unit passes directly to the waiter
        else:
            self.in_use -= 1


class Process:
    """Drives a generator, resuming it each time its yielded waitable fires.

    The generator may yield :class:`Timeout`, :class:`Event`,
    :class:`Acquire`, or :class:`AllOf`; ``Acquire`` yields resume with the
    resource as value (for symmetry; release is explicit).
    """

    __slots__ = ("engine", "gen", "done", "name", "_waitable", "_resume")

    def __init__(self, engine: "Engine", gen: Generator[Any, Any, None],
                 name: str = "") -> None:
        self.engine = engine
        self.gen = gen
        self.done = Event(engine)
        self.name = name
        self._waitable: Any = None
        # One resume callback reused for every timeout/event this process
        # ever waits on — the hot loop allocates no per-wait closures.
        self._resume: Callable[[], None] = self._advance_none
        engine._pending += 1
        engine._live.append(self)
        self._advance(None)

    @property
    def waiting_on(self) -> Optional[str]:
        """Lazy human-readable label for deadlock diagnoses only."""
        if self._waitable is None:
            return None
        return _describe_waitable(self._waitable)

    def _advance_none(self) -> None:
        self._advance(None)

    def _advance(self, value: Any) -> None:
        self._waitable = None
        try:
            waitable = self.gen.send(value)
        except StopIteration:
            self.engine._pending -= 1
            self.done.trigger()
            return
        self._waitable = waitable
        self._wait(waitable)

    def _wait(self, waitable: Any) -> None:
        if isinstance(waitable, Timeout):
            self.engine.call_at(self.engine.now + waitable.delay, self._resume)
        elif isinstance(waitable, Event):
            waitable.on_trigger(self._resume)
        elif isinstance(waitable, Acquire):
            res = waitable.resource
            if res.try_acquire():
                # Uncontended: grant inline, no Event allocated.  This is
                # synchronous exactly like the pre-triggered-event path, so
                # scheduling order (and thus every simulated timestamp) is
                # identical to the queued case.
                self._advance(res)
            else:
                res._enqueue(lambda: self._advance(res))
        elif isinstance(waitable, AllOf):
            children = waitable.children
            if not children:
                # Resume on the next engine tick to keep semantics uniform.
                self.engine.call_at(self.engine.now, self._resume)
                return
            remaining = len(children)

            def one_done() -> None:
                nonlocal remaining
                remaining -= 1
                if remaining == 0:
                    self._advance(None)

            for child in children:
                if isinstance(child, Event):
                    child.on_trigger(one_done)
                elif isinstance(child, Timeout):
                    self.engine.call_at(self.engine.now + child.delay, one_done)
                else:
                    raise MachineError(
                        f"AllOf supports Events/Timeouts, got {type(child)}"
                    )
        else:
            raise MachineError(f"cannot wait on {type(waitable).__name__}")


def _describe_waitable(waitable: Any) -> str:
    """Human-readable label for a deadlock diagnosis."""
    if isinstance(waitable, Timeout):
        return f"timeout({waitable.delay:.3g}s)"
    if isinstance(waitable, Acquire):
        return f"acquire({waitable.resource.name or 'resource'})"
    if isinstance(waitable, AllOf):
        pending = sum(
            1 for c in waitable.children
            if isinstance(c, Event) and not c.triggered
        )
        return f"all_of({len(waitable.children)} waitables, {pending} pending)"
    if isinstance(waitable, Event):
        return "event"
    return type(waitable).__name__


class ClassBatch:
    """Vectorized fan-out from per-class simulation state to per-rank state.

    The class-collapsed simulator (:mod:`repro.simnet.collapsed`) runs one
    DES process per rank-equivalence class; everything per-rank it reports
    is a *batch expansion* of per-class values.  This helper owns that
    expansion so advancing all members of a class is one NumPy operation
    (a fancy-indexed gather), never a Python loop over ``p`` ranks —
    the step that keeps result assembly sublinear-friendly at
    ``p = 10^6``.
    """

    __slots__ = ("labels", "sizes")

    def __init__(self, labels: np.ndarray, sizes: np.ndarray) -> None:
        self.labels = labels          # int32 [nranks]: class id per rank
        self.sizes = sizes            # int64 [nclasses]: members per class

    @property
    def nranks(self) -> int:
        """Total ranks covered by the batch."""
        return len(self.labels)

    @property
    def nclasses(self) -> int:
        """Number of equivalence classes."""
        return len(self.sizes)

    def expand(self, per_class: np.ndarray) -> np.ndarray:
        """Per-rank array from a per-class one: one gather, no loop.

        >>> import numpy as np
        >>> batch = ClassBatch(np.array([0, 1, 0, 1]), np.array([2, 2]))
        >>> batch.expand(np.array([1.5, 2.5])).tolist()
        [1.5, 2.5, 1.5, 2.5]
        """
        return np.asarray(per_class)[self.labels]

    def total(self, per_class: np.ndarray) -> int:
        """Population total of a per-class count (weighted by class size).

        >>> import numpy as np
        >>> batch = ClassBatch(np.array([0, 0, 0, 1]), np.array([3, 1]))
        >>> batch.total(np.array([2, 5]))
        11
        """
        return int(np.dot(np.asarray(per_class, dtype=np.int64), self.sizes))


class Engine:
    """The event loop: a clock plus a heap of timed callbacks."""

    __slots__ = ("now", "_heap", "_seq", "_pending", "_live", "_obs")

    def __init__(self, obs=None) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._pending = 0  # live (unfinished) processes
        self._live: List["Process"] = []  # every process ever registered
        # Observability scope; default is the process-global one. Only
        # consulted once per run() — never on the per-event path.
        self._obs = obs if obs is not None else OBS

    def call_at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute simulated ``time``."""
        if time < self.now:
            raise MachineError(
                f"cannot schedule into the past ({time} < {self.now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn))

    def process(self, gen: Generator[Any, Any, None], name: str = "") -> Process:
        """Register and immediately start a new process."""
        return Process(self, gen, name=name)

    def run(self) -> float:
        """Run until no more work remains; returns the final clock.

        Raises :class:`~repro.errors.MachineError` if processes remain
        blocked when the heap drains (a deadlock — cannot happen for
        schedules that pass validation, but detected defensively).
        A zero-event run (nothing scheduled, nothing blocked) returns the
        initial clock.
        """
        heap = self._heap
        pop = heapq.heappop
        obs = self._obs
        if obs.enabled:
            # Instrumented twin of the loop below. Selected once per run
            # so the uninstrumented path pays nothing — not even a flag
            # check per event.
            events = 0
            peak = len(heap)
            while heap:
                if len(heap) > peak:
                    peak = len(heap)
                time, _, fn = pop(heap)
                self.now = time
                fn()
                events += 1
            m = obs.metrics
            m.counter("repro_engine_runs_total").inc()
            m.counter("repro_engine_events_total").inc(events)
            m.gauge("repro_engine_heap_depth_peak").set_max(peak)
            m.gauge("repro_engine_blocked_processes").set_max(self._pending)
        else:
            while heap:
                time, _, fn = pop(heap)
                self.now = time
                fn()
        if self._pending:
            raise MachineError(self._deadlock_report())
        return self.now

    def _deadlock_report(self) -> str:
        """Describe the blocked processes without touching the drained heap.

        Diagnosis must not assume any heap state: it only inspects the
        process registry (popping the already-empty heap here would raise
        an ``IndexError`` and mask the real deadlock — the zero-event and
        all-blocked engine tests pin this down).
        """
        blocked = [p for p in self._live if not p.done.triggered]
        shown = ", ".join(
            f"{p.name or '<anonymous>'} waiting on "
            f"{p.waiting_on or '<nothing>'}"
            for p in blocked[:16]
        )
        if len(blocked) > 16:
            shown += f", ... ({len(blocked) - 16} more)"
        return (
            f"simulation deadlock: {self._pending} process(es) still "
            f"blocked at t={self.now}: {shown}"
        )
