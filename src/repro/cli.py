"""Command-line entry points.

Eleven console scripts are installed with the package:

``repro-bench``
    Run one (or all) of the paper's experiments and print the figure data
    and shape checks: ``repro-bench fig8b``, ``repro-bench --list``,
    ``repro-bench all``.

``repro-tune``
    Generate a tuned MPICH-style selection configuration for a simulated
    machine and write it as JSON: ``repro-tune --machine frontier
    --nodes 32 -o tuned.json``.

``repro-validate``
    Symbolically verify schedules across a parameter grid (the quick
    confidence check after modifying an algorithm):
    ``repro-validate --collective allreduce --max-p 40``.

``repro-chaos``
    Sweep seeded fault scenarios (drops, duplicates, degraded links,
    stragglers, crashes) across the paper's ten generalized algorithms on
    both backends and check the resilience contract — every case either
    completes with correct results or raises a structured fault error:
    ``repro-chaos --p 8 --seed 0``; add ``--recover`` to heal the
    unmaskable faults through :mod:`repro.recovery` instead of merely
    classifying them.

``repro-recover``
    The self-healing layer standalone: demo one collective surviving a
    seeded mid-schedule rank crash (``repro-recover allreduce knomial
    --p 8 --crash-rank 1``), or sweep time-to-recovery vs radix across
    the whole algorithm suite and write the CI artifact
    (``repro-recover --sweep -o recovery_report.json``).

``repro-bench-perf``
    Time schedule builds, single simulations, and the combined
    Fig. 8+9 sweep on the cold vs. cached paths and write
    ``BENCH_perf.json``; with ``--baseline`` it also gates against a
    committed report: ``repro-bench-perf -o BENCH_perf.json`` then
    ``repro-bench-perf --smoke --baseline BENCH_perf.json`` in CI.

``repro-trace``
    Run one collective point under full observability and write a
    Perfetto/Chrome-loadable trace (host spans merged with the simulated
    message timeline on one timebase) plus a metrics snapshot (JSON and
    Prometheus text): ``repro-trace allreduce recursive_multiplying
    --p 64 --k 4 --nbytes 65536 -o trace.json``.

``repro-sweep``
    The crash-safe radix sweep: simulate a (algorithm × k × size) grid
    and write deterministic results JSON, journaling every completed
    point so an interrupted run resumes where it died:
    ``repro-sweep --collective allreduce --journal sweep.jsonl
    -o results.json``, then after a crash the same command with
    ``--resume``.  ``--store DIR`` persists built schedules across runs;
    the resumed results are bit-identical to an uninterrupted sweep.

``repro-adapt``
    The online adaptive selection loop (:mod:`repro.adapt`): drive a
    named drift scenario — a flapping NIC, a migrating straggler,
    multi-job contention, or a calm fabric — on a simulated machine and
    report cumulative regret and time-to-adapt against the per-round
    oracle, plus the full round-by-round trail as JSON:
    ``repro-adapt --scenario flap -o adapt_report.json``; add
    ``--check-jobs 2`` to prove the trail bit-identical across sweep
    fan-outs.

``repro-serve``
    The schedule-tuning service (:mod:`repro.server`): boot an asyncio
    HTTP daemon that answers ``/select`` queries from a tuned table,
    serves content-addressed compiled schedules from a disk store,
    coalesces concurrent identical ``/tune`` sweeps into single
    flights, exposes Prometheus ``/metrics``, and exports the
    MPICH-style selection-config artifact at ``/config``:
    ``repro-serve --machine reference --nodes 8 --port 8080``; add
    ``--grid tuned_config.json`` to warm-start boot from a committed
    artifact and ``--store DIR`` to persist schedules across restarts.
    SIGTERM shuts the service down cleanly (rc 0); Ctrl-C exits 130.

``repro-check``
    Static schedule analysis — deadlock (eager + rendezvous send
    semantics), intra-step buffer hazards, dataflow lint, and
    model-consistency checks, without running the simulator: one point
    (``repro-check allreduce knomial --p 16 --k 4``), a serialized
    schedule (``repro-check --schedule sched.json``), or the whole
    registry over the acceptance grid as the CI gate
    (``repro-check --all --jobs 4``).  ``--json`` emits the machine
    report; ``--strict`` fails on warnings too.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench.experiments import ALL_EXPERIMENTS, run_experiment
from .bench.osu import default_sizes
from .core.registry import COLLECTIVES, algorithms_for, build_schedule, info
from .core.validate import verify
from .errors import ReproError
from .selection.tuner import tune
from .simnet.machines import by_name, get as machine_by_name
from .simnet.simulate import ENGINES

__all__ = [
    "main_bench",
    "main_tune",
    "main_validate",
    "main_chaos",
    "main_recover",
    "main_bench_perf",
    "main_trace",
    "main_check",
    "main_sweep",
    "main_adapt",
    "main_serve",
]


def _machine_arg(name: str, nodes: int, ppn: int):
    """Resolve a ``--machine`` argument.

    A bare base name (``frontier``/``polaris``/``reference``) combines
    with ``--nodes``/``--ppn``; a self-contained registry name
    (``dragonfly-1024``, ``frontier-64x8``, ``reference-4096`` — see
    :func:`repro.simnet.machines.get`) pins its own geometry, so the
    large-p specs never need geometry flags.
    """
    if "-" in name:
        return machine_by_name(name)
    return by_name(name, nodes, ppn)


def main_bench(argv: Optional[List[str]] = None) -> int:
    """``repro-bench``: run paper experiments."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures on the "
        "simulated machines.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id (e.g. fig8b), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="also write the full report to a file",
    )
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        for exp_id in sorted(ALL_EXPERIMENTS):
            print(exp_id)
        return 0

    ids = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    failures = 0
    sections = []
    for exp_id in ids:
        try:
            result = run_experiment(exp_id)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        summary = result.summary()
        print(summary)
        print()
        sections.append(summary)
        if not result.all_ok:
            failures += 1
    if args.output:
        from pathlib import Path

        Path(args.output).write_text("\n\n".join(sections) + "\n")
        print(f"wrote report to {args.output}")
    if failures:
        print(f"{failures} experiment(s) diverged from the paper's claims",
              file=sys.stderr)
    return 1 if failures else 0


def main_tune(argv: Optional[List[str]] = None) -> int:
    """``repro-tune``: generate a tuned selection configuration."""
    parser = argparse.ArgumentParser(
        prog="repro-tune",
        description="Exhaustively sweep the simulator and emit an "
        "MPICH-style selection configuration (paper §VI-G).",
    )
    parser.add_argument("--machine", default="frontier",
                        help="base machine (frontier/polaris/reference, "
                        "combined with --nodes/--ppn) or a self-contained "
                        "registry name like dragonfly-1024 or "
                        "frontier-64x8 (repro.simnet.machines.get)")
    parser.add_argument("--nodes", type=int, default=32)
    parser.add_argument("--ppn", type=int, default=1)
    parser.add_argument("--min-bytes", type=int, default=8)
    parser.add_argument("--max-bytes", type=int, default=1 << 22)
    parser.add_argument("--engine", default="auto", choices=ENGINES,
                        help="simulation core: auto (default) picks the "
                        "class-collapsed engine where eligible, "
                        "materialized forces per-rank simulation, "
                        "collapsed requests collapsing with recorded "
                        "fallback; winners are identical under all three")
    parser.add_argument("-j", "--jobs", type=int, default=0,
                        help="worker processes for the sweep (0/1 serial, "
                        "-1 all cores); winners are identical at any "
                        "job count")
    parser.add_argument("-o", "--output", default=None,
                        help="write JSON here (default: stdout)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="enable observability for the sweep and "
                        "write a metrics snapshot here (JSON; Prometheus "
                        "text beside it as .prom)")
    parser.add_argument("--check", action="store_true",
                        help="statically analyze every candidate schedule "
                        "(repro.check) before sweeping; refuse to tune "
                        "over one with error findings")
    parser.add_argument("--no-compile", action="store_true",
                        help="interpret schedules op by op instead of "
                        "using compiled program tables (repro.compile); "
                        "winners are identical either way")
    args = parser.parse_args(argv)

    from .obs import OBS

    if args.metrics_out:
        OBS.reset()
        OBS.enable()
    try:
        machine = _machine_arg(args.machine, args.nodes, args.ppn)
        sizes = [n for n in default_sizes(args.min_bytes, args.max_bytes)]
        # Tuning every power of two is slow in simulation; every other
        # power of two bounds the sweep while keeping cutoffs tight.
        table = tune(machine, sizes[::2] + [sizes[-1]], jobs=args.jobs,
                     check=args.check, compiled=not args.no_compile,
                     engine=args.engine)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # No partial table is written (a truncated selection config
        # would silently mis-tune) — but the metrics snapshot below
        # still flushes, so the interrupted sweep stays inspectable.
        print("\ninterrupted: no configuration written", file=sys.stderr)
        return 130
    finally:
        if args.metrics_out:
            OBS.write_metrics(args.metrics_out)
            OBS.disable()
            print(f"wrote {args.metrics_out} (+ .prom)", file=sys.stderr)
    if args.output:
        table.save(args.output)
        print(f"wrote {args.output}")
        print(table.describe())
    else:
        print(table.to_json())
    return 0


def main_validate(argv: Optional[List[str]] = None) -> int:
    """``repro-validate``: symbolic verification sweep."""
    parser = argparse.ArgumentParser(
        prog="repro-validate",
        description="Symbolically verify collective schedules across a "
        "(p, k, root) grid.",
    )
    parser.add_argument("--collective", default=None, choices=COLLECTIVES)
    parser.add_argument("--algorithm", default=None)
    parser.add_argument("--max-p", type=int, default=24)
    parser.add_argument(
        "--dump",
        default=None,
        metavar="PATH",
        help="additionally write one verified schedule as JSON "
        "(requires --collective, --algorithm and --dump-p)",
    )
    parser.add_argument("--dump-p", type=int, default=8)
    parser.add_argument("--dump-k", type=int, default=None)
    args = parser.parse_args(argv)

    if args.dump:
        if not (args.collective and args.algorithm):
            print("error: --dump needs --collective and --algorithm",
                  file=sys.stderr)
            return 2
        from .core.serialize import save_schedule

        try:
            sched = build_schedule(
                args.collective, args.algorithm, args.dump_p, k=args.dump_k
            )
            verify(sched)
            save_schedule(sched, args.dump)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"verified and wrote {sched.describe()} to {args.dump}")
        return 0

    colls = [args.collective] if args.collective else list(COLLECTIVES)
    count = 0
    for coll in colls:
        algs = [args.algorithm] if args.algorithm else algorithms_for(coll)
        for alg in algs:
            try:
                entry = info(coll, alg)
            except ReproError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            for p in range(1, args.max_p + 1):
                ks = [None]
                if entry.takes_k:
                    ks = sorted({entry.min_k, 2, 3, 4, p, p + 1} - {0, 1}
                                | ({1} if entry.min_k == 1 else set()))
                    ks = [k for k in ks if k >= entry.min_k]
                roots = [0, p - 1] if entry.takes_root and p > 1 else [0]
                for k in ks:
                    for root in roots:
                        try:
                            verify(build_schedule(coll, alg, p, k=k, root=root))
                            count += 1
                        except ReproError as exc:
                            print(
                                f"FAIL {coll}/{alg} p={p} k={k} root={root}: "
                                f"{exc}",
                                file=sys.stderr,
                            )
                            return 1
    print(f"verified {count} schedules — all correct")
    return 0


def main_chaos(argv: Optional[List[str]] = None) -> int:
    """``repro-chaos``: fault-injection sweep over the algorithm suite."""
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Sweep seeded fault scenarios across every generalized "
        "algorithm on the threaded transport and the simulator, asserting "
        "each case either completes correctly or fails with a structured "
        "diagnosis.",
    )
    parser.add_argument("--p", type=int, default=8,
                        help="ranks per schedule (default 8)")
    parser.add_argument("--count", type=int, default=64,
                        help="elements per buffer (default 64)")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed for every scenario")
    parser.add_argument("--backend", default=None,
                        choices=["threaded", "sim"],
                        help="restrict to one backend (default: both)")
    parser.add_argument("--scenario", default=None,
                        help="restrict to one scenario by name")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-receive timeout for the threaded "
                        "transport (seconds)")
    parser.add_argument("--engine", default="auto", choices=ENGINES,
                        help="simulation core for the sim backend "
                        "(threaded cases ignore it); classifications "
                        "are identical under all three — 'collapsed' "
                        "additionally records why each faulted case "
                        "fell back to the materialized core")
    parser.add_argument("--recover", action="store_true",
                        help="heal unmaskable faults through "
                        "repro.recovery (detect, shrink/substitute, "
                        "rebuild, rerun) instead of just classifying "
                        "them")
    parser.add_argument("--recover-mode", default=None,
                        choices=["abort", "shrink", "spare"],
                        help="recovery policy mode (implies --recover; "
                        "default with --recover: spare substitution "
                        "with p spares)")
    parser.add_argument("--allow-partial", action="store_true",
                        help="exit 0 even when cases end in structured "
                        "faults (without this, a sweep with unhealed "
                        "partial failures exits 1)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every case, not just the summary")
    args = parser.parse_args(argv)

    from .faults.chaos import (
        default_recovery_policy,
        default_scenarios,
        run_chaos,
        summarize,
    )

    recover = None
    if args.recover or args.recover_mode:
        if args.recover_mode in (None, "spare"):
            recover = default_recovery_policy(args.p)
        else:
            from .recovery import RecoveryPolicy

            recover = RecoveryPolicy(mode=args.recover_mode)
    scenarios = default_scenarios(args.seed, args.p)
    if args.scenario is not None:
        scenarios = tuple(s for s in scenarios if s.name == args.scenario)
        if not scenarios:
            known = ", ".join(s.name for s in default_scenarios(args.seed,
                                                                args.p))
            print(f"error: unknown scenario {args.scenario!r} "
                  f"(known: {known})", file=sys.stderr)
            return 2
    backends = [args.backend] if args.backend else ["threaded", "sim"]
    try:
        results = run_chaos(
            scenarios,
            p=args.p,
            count=args.count,
            seed=args.seed,
            backends=backends,
            timeout=args.timeout,
            recover=recover,
            engine=args.engine,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("\ninterrupted mid-sweep: no cases summarized",
              file=sys.stderr)
        return 130
    if args.verbose:
        for r in results:
            print(r.describe())
        print()
    print(summarize(results))
    violations = [r for r in results if not r.ok]
    if violations:
        return 1
    partial = [r for r in results if r.outcome == "fault"]
    if partial and not args.allow_partial:
        # A structured fault honors the fail-loud contract, but the
        # collective still did not complete — that must not look like
        # success to CI.  Healing them (or accepting them) is explicit.
        print(
            f"{len(partial)} case(s) ended in unhealed partial failures; "
            "re-run with --recover to heal them or --allow-partial to "
            "accept structured faults as success",
            file=sys.stderr,
        )
        return 1
    return 0


def main_recover(argv: Optional[List[str]] = None) -> int:
    """``repro-recover``: self-healing demo and recovery sweep."""
    parser = argparse.ArgumentParser(
        prog="repro-recover",
        description="Heal a seeded mid-schedule rank crash through "
        "detect -> shrink/substitute -> rebuild -> rerun, or (--sweep) "
        "chart time-to-recovery vs radix across the algorithm suite "
        "and write a JSON report.",
    )
    parser.add_argument("collective", nargs="?", default="allreduce",
                        choices=COLLECTIVES)
    parser.add_argument("algorithm", nargs="?", default="knomial")
    parser.add_argument("--p", type=int, default=8,
                        help="ranks (default 8)")
    parser.add_argument("--k", type=int, default=None,
                        help="generalization radix")
    parser.add_argument("--count", type=int, default=64,
                        help="elements per buffer for the threaded demo "
                        "(default 64)")
    parser.add_argument("--nbytes", type=int, default=65536,
                        help="message size for the simulated paths "
                        "(default 65536)")
    parser.add_argument("--mode", default="shrink",
                        choices=["abort", "shrink", "spare"],
                        help="recovery policy mode (default shrink)")
    parser.add_argument("--crash-rank", type=int, default=1,
                        help="rank that dies (default 1)")
    parser.add_argument("--crash-step", type=int, default=1,
                        help="sends completed before dying (default 1)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", default="both",
                        choices=["threaded", "sim", "both"],
                        help="demo backend(s) (default both)")
    parser.add_argument("--machine", default="reference",
                        help="base machine (frontier/polaris/reference) "
                        "or a registry name like dragonfly-1024 "
                        "(repro.simnet.machines.get)")
    parser.add_argument("--ppn", type=int, default=1)
    parser.add_argument("--sweep", action="store_true",
                        help="sweep every generalized algorithm across "
                        "the radix grid instead of the single demo")
    parser.add_argument("-j", "--jobs", type=int, default=0,
                        help="worker processes for the sweep (0/1 "
                        "serial, -1 all cores); records are identical "
                        "at any job count")
    parser.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="write the sweep's JSON report here")
    args = parser.parse_args(argv)

    from .errors import RecoveryError
    from .faults.plan import Crash, FaultPlan
    from .recovery import RecoveryPolicy

    spares = args.p if args.mode == "spare" else 0
    policy = RecoveryPolicy(mode=args.mode, spares=spares)
    try:
        machine = _machine_arg(args.machine, args.p // args.ppn, args.ppn)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.sweep:
        from .bench.recovery import (
            run_recovery_sweep,
            summarize_recovery,
            unrecovered,
            write_recovery_report,
        )

        try:
            records = run_recovery_sweep(
                machine,
                nbytes=args.nbytes,
                crash_rank=args.crash_rank,
                crash_step=args.crash_step,
                seed=args.seed,
                recovery=policy,
                jobs=args.jobs,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except KeyboardInterrupt:
            # A truncated recovery report would understate
            # time-to-recovery coverage — write nothing.
            print("\ninterrupted: no report written", file=sys.stderr)
            return 130
        print(summarize_recovery(records))
        if args.output:
            write_recovery_report(records, args.output, machine=machine,
                                  policy=policy, seed=args.seed)
            print(f"wrote {args.output}")
        return 1 if unrecovered(records) else 0

    from .faults.plan import RetryPolicy

    # Fast retry budget so the threaded demo detects the dead rank in
    # milliseconds instead of the default multi-second RTO ladder.
    plan = FaultPlan(
        seed=args.seed,
        crashes=(Crash(rank=args.crash_rank, step=args.crash_step),),
        retry=RetryPolicy(max_retries=4, rto=0.02, backoff=2.0,
                          max_rto=0.1),
    )
    status = 0
    try:
        if args.backend in ("sim", "both"):
            from .recovery import simulate_with_recovery

            res = simulate_with_recovery(
                args.collective, args.algorithm, machine, args.nbytes,
                recovery=policy, k=args.k, faults=plan,
            )
            print(f"sim: {res.report.describe()}")
            if res.recovered:
                print(f"sim: total {res.time_us:.1f} us, time-to-recovery "
                      f"{res.time_to_recovery_us:.1f} us, post-recovery "
                      f"{res.post_recovery_us:.1f} us")
            else:
                status = 1
        if args.backend in ("threaded", "both"):
            from .recovery import execute_with_recovery

            try:
                run = execute_with_recovery(
                    args.collective, args.algorithm, p=args.p,
                    count=args.count, recovery=policy, k=args.k,
                    faults=plan,
                )
            except RecoveryError as exc:
                print(f"threaded: unrecovered: {exc}", file=sys.stderr)
                status = 1
            else:
                print(f"threaded: {run.report.describe()}")
                print(f"threaded: survivors host slots {list(run.hosts)}; "
                      "results verified bit-exact over the survivor group")
    except KeyboardInterrupt:
        # ^C mid-demo (the threaded transport can sit in its retry
        # ladder for a while): conventional 128+SIGINT status, no
        # partial verdict printed as if it were one.
        print("\ninterrupted", file=sys.stderr)
        return 130
    return status


def main_bench_perf(argv: Optional[List[str]] = None) -> int:
    """``repro-bench-perf``: performance-regression benchmark."""
    parser = argparse.ArgumentParser(
        prog="repro-bench-perf",
        description="Time schedule builds, single simulations, and the "
        "combined Fig. 8+9 sweep on the cold vs. cached paths; "
        "optionally gate against a committed baseline report.",
    )
    parser.add_argument("--machine", default="frontier",
                        help="base machine (frontier/polaris/reference, "
                        "combined with --nodes/--ppn) or a registry name "
                        "like dragonfly-1024 (default: frontier)")
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--ppn", type=int, default=1)
    parser.add_argument("--smoke", action="store_true",
                        help="trimmed grid for CI (seconds, not minutes)")
    parser.add_argument("-j", "--jobs", type=int, action="append",
                        default=None, metavar="N",
                        help="also time the cached sweep at this job "
                        "count (repeatable; default: 4)")
    parser.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="write the JSON report here "
                        "(e.g. BENCH_perf.json)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="committed report to gate against; exits 1 "
                        "if schedule-build time regresses")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="allowed regression factor vs the baseline "
                        "(default 2.0)")
    parser.add_argument("--obs-factor", type=float, default=1.05,
                        help="allowed factor for the instrumentation-"
                        "disabled sweep vs the baseline (default 1.05 "
                        "= within 5%%)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="after the timed (instrumentation-off) "
                        "sections, re-run the cached sweep with "
                        "observability on and write its metrics snapshot "
                        "here (JSON; Prometheus text beside it as .prom)")
    parser.add_argument("--adapt-out", default=None, metavar="PATH",
                        help="also write the adapt tier's full drift "
                        "trail here (adapt_report.json — the same "
                        "document repro-adapt -o writes)")
    args = parser.parse_args(argv)

    from .bench.perf import (
        check_regression,
        format_report,
        load_report,
        run_perf,
        write_report,
    )

    try:
        report = run_perf(
            machine_name=args.machine,
            nodes=args.nodes,
            ppn=args.ppn,
            smoke=args.smoke,
            jobs_levels=tuple(args.jobs) if args.jobs else (4,),
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # A partial report would gate CI on numbers from an incomplete
        # grid — refuse to write one, but leave whatever the obs
        # section accumulated for --metrics-out.
        print("\ninterrupted: no report written", file=sys.stderr)
        if args.metrics_out:
            from .obs import OBS

            OBS.write_metrics(args.metrics_out)
            print(f"wrote {args.metrics_out} (+ .prom)", file=sys.stderr)
        return 130
    print(format_report(report))
    if args.metrics_out:
        # run_perf leaves the metrics of its obs-overhead section in the
        # global scope (disabled but not reset) exactly for this dump.
        from .obs import OBS

        OBS.write_metrics(args.metrics_out)
        print(f"wrote {args.metrics_out} (+ .prom)")
    if args.output:
        write_report(report, args.output)
        print(f"wrote {args.output}")
    if args.adapt_out:
        import json as _json
        from pathlib import Path

        Path(args.adapt_out).write_text(
            _json.dumps(report["adapt"]["flap"], indent=2, sort_keys=True)
            + "\n"
        )
        print(f"wrote {args.adapt_out}")
    if args.baseline:
        try:
            baseline = load_report(args.baseline)
        except (OSError, ValueError, ReproError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        failures = check_regression(report, baseline, factor=args.factor,
                                    obs_factor=args.obs_factor)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.baseline} "
              f"(factor {args.factor:.1f}x, obs {args.obs_factor:.2f}x)")
    return 0


def main_trace(argv: Optional[List[str]] = None) -> int:
    """``repro-trace``: one collective under full observability."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Trace one collective point end to end: a size sweep "
        "around the requested point (exercising the schedule cache and "
        "the simulator) plus a per-message timeline, merged into one "
        "Perfetto/Chrome trace and a metrics snapshot.",
    )
    parser.add_argument("collective", choices=COLLECTIVES)
    parser.add_argument("algorithm")
    parser.add_argument("--p", type=int, default=64,
                        help="total ranks (default 64)")
    parser.add_argument("--k", type=int, default=None,
                        help="generalization radix")
    parser.add_argument("--root", type=int, default=0)
    parser.add_argument("--nbytes", type=int, default=65536,
                        help="message size at the traced point "
                        "(default 65536)")
    parser.add_argument("--machine", default="frontier",
                        help="base machine (frontier/polaris/reference) "
                        "or a registry name like dragonfly-1024 "
                        "(repro.simnet.machines.get)")
    parser.add_argument("--ppn", type=int, default=1,
                        help="processes per node (nodes = p / ppn)")
    parser.add_argument("-j", "--jobs", type=int, default=0,
                        help="worker processes for the sweep "
                        "(0/1 serial, -1 all cores)")
    parser.add_argument("-o", "--output", default="trace.json",
                        metavar="PATH",
                        help="Perfetto trace path (default trace.json)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="metrics snapshot path (default: "
                        "<output stem>-metrics.json; Prometheus text "
                        "beside it as .prom)")
    args = parser.parse_args(argv)

    from pathlib import Path

    from .api import build, simulate
    from .bench.sweep import SweepPoint, run_sweep, sweep_stats
    from .obs import OBS

    if args.p % args.ppn:
        print(f"error: p={args.p} not divisible by ppn={args.ppn}",
              file=sys.stderr)
        return 2
    metrics_out = args.metrics_out or str(
        Path(args.output).with_name(Path(args.output).stem + "-metrics.json")
    )
    try:
        machine = _machine_arg(args.machine, args.p // args.ppn, args.ppn)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    OBS.reset()
    OBS.enable()
    try:
        with OBS.span(
            "trace",
            collective=args.collective,
            algorithm=args.algorithm,
            p=args.p,
            nbytes=args.nbytes,
        ):
            # A small size sweep around the requested point: repeated
            # schedule params across sizes exercise the schedule cache
            # (1 miss + hits) and the simulator's event engine.
            sizes = sorted(
                {max(args.nbytes // 4, 1), args.nbytes, args.nbytes * 4}
            )
            points = [
                SweepPoint(args.collective, args.algorithm, n,
                           k=args.k, root=args.root)
                for n in sizes
            ]
            results = run_sweep(points, machine, jobs=args.jobs)
            # The traced point itself, with the per-message timeline that
            # becomes the simulated track in the Perfetto export.
            sched = build(args.collective, args.algorithm,
                          p=args.p, k=args.k, root=args.root)
            res = simulate(sched, machine, nbytes=args.nbytes,
                           timeline=True)
    except ReproError as exc:
        OBS.disable()
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trace_path = OBS.write_trace(
        args.output,
        metadata={
            "tool": "repro-trace",
            "machine": machine.name,
            "point": f"{args.collective}/{args.algorithm} "
                     f"p={args.p} k={args.k} nbytes={args.nbytes}",
        },
    )
    OBS.write_metrics(metrics_out)
    OBS.disable()

    stats = sweep_stats(results)
    print(f"{args.collective}/{args.algorithm} p={args.p} k={args.k} "
          f"nbytes={args.nbytes} on {machine.name}: "
          f"{res.time_us:.1f} us, {res.messages} messages")
    print(f"sweep: {stats.points} points, "
          f"build hit rate {stats.build_hit_rate:.0%}")
    print(f"wrote {trace_path} "
          f"(open at https://ui.perfetto.dev or chrome://tracing)")
    print(f"wrote {metrics_out} (+ .prom)")
    return 1 if stats.errors else 0


def main_check(argv: Optional[List[str]] = None) -> int:
    """``repro-check``: static schedule analysis (no simulator)."""
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Statically analyze collective schedules: deadlock "
        "detection under eager and rendezvous send semantics, intra-step "
        "buffer hazards, symbolic dataflow lint, and model-consistency "
        "checks against repro.models — without running the simulator.",
    )
    parser.add_argument("collective", nargs="?", default=None,
                        choices=COLLECTIVES)
    parser.add_argument("algorithm", nargs="?", default=None)
    parser.add_argument("--p", type=int, default=8,
                        help="ranks for the single-point check (default 8)")
    parser.add_argument("--k", type=int, default=None,
                        help="generalization radix")
    parser.add_argument("--root", type=int, default=0,
                        help="root rank for rooted collectives (default 0)")
    parser.add_argument("--nbytes", type=int, default=1 << 20,
                        help="payload size the analyses price blocks at "
                        "(default 1 MiB)")
    parser.add_argument("--eager-threshold", type=int, default=None,
                        metavar="BYTES",
                        help="additionally analyze the mixed send regime: "
                        "payloads <= BYTES buffer eagerly, larger ones "
                        "rendezvous (the eager and rendezvous extremes "
                        "always run)")
    parser.add_argument("--schedule", default=None, metavar="PATH",
                        help="check a serialized schedule JSON (as written "
                        "by repro-validate --dump) instead of building "
                        "from the registry")
    parser.add_argument("--all", action="store_true",
                        help="sweep every registry (collective, algorithm) "
                        "pair over the acceptance grid "
                        "(p in {2..17, 32, 64}, k in {2..8}) — the CI gate")
    parser.add_argument("--engine", default="materialized", choices=ENGINES,
                        help="with --all: 'collapsed' additionally runs "
                        "the rank-equivalence-class analysis per point "
                        "(still static — the checker never simulates) and "
                        "reports class counts; 'materialized'/'auto' "
                        "analyze schedules only")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on warnings, not just errors")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable JSON report "
                        "instead of the human summary")
    parser.add_argument("-j", "--jobs", type=int, default=0,
                        help="worker processes for --all (0/1 serial, "
                        "-1 all cores); records are identical at any "
                        "job count")
    parser.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="also write the JSON report to a file")
    args = parser.parse_args(argv)

    import json as _json

    if args.all:
        from .bench.checksweep import (
            grid_points,
            run_check_sweep,
            summarize_check_sweep,
        )

        points = grid_points(
            nbytes=args.nbytes,
            eager_threshold=args.eager_threshold,
            collective=args.collective,
            algorithm=args.algorithm,
            engine=args.engine,
        )
        if not points:
            print("error: no registry entries match the filter",
                  file=sys.stderr)
            return 2
        try:
            records = run_check_sweep(points, jobs=args.jobs)
        except KeyboardInterrupt:
            # A partial grid would pass CI on configurations it never
            # analyzed — refuse to summarize or write one.
            print("\ninterrupted: no report written", file=sys.stderr)
            return 130
        summary = summarize_check_sweep(records)
        doc = {
            "summary": summary,
            "records": [r.to_dict() for r in records],
        }
        if args.json:
            print(_json.dumps(doc, indent=2))
        else:
            print(
                f"checked {summary['points']} configurations: "
                f"{summary['ok']} ok, {summary['failing']} failing, "
                f"{summary['warnings']} warning(s)"
            )
            if "classes" in summary:
                cls = summary["classes"]
                print(
                    f"class analysis: {cls['total_ranks']} ranks collapse "
                    f"to {cls['total_classes']} classes across "
                    f"{cls['points']} configurations"
                )
            for record in records:
                if record.ok and not (args.strict and record.warnings):
                    continue
                where = f"{record.collective}/{record.algorithm} " \
                        f"p={record.p} k={record.k}"
                if record.error:
                    print(f"  FAIL {where}: {record.error}")
                for finding in record.findings:
                    print(f"  FAIL {where}: {finding['message']}")
        if args.output:
            from pathlib import Path

            Path(args.output).write_text(_json.dumps(doc, indent=2) + "\n")
            print(f"wrote {args.output}")
        failing = summary["failing"]
        if args.strict and summary["warnings"]:
            failing += summary["warnings"]
        return 1 if failing else 0

    from .check import run_checks

    try:
        if args.schedule:
            from .core.serialize import load_schedule

            sched = load_schedule(args.schedule)
        elif args.collective and args.algorithm:
            sched = build_schedule(
                args.collective, args.algorithm, args.p,
                k=args.k, root=args.root,
            )
        else:
            print(
                "error: name a (collective, algorithm) pair, or use "
                "--schedule PATH / --all",
                file=sys.stderr,
            )
            return 2
        report = run_checks(
            sched,
            nbytes=args.nbytes,
            eager_threshold=args.eager_threshold,
        )
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("\ninterrupted: no report written", file=sys.stderr)
        return 130
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.describe())
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            _json.dumps(report.to_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.output}")
    return 0 if (report.strict_ok if args.strict else report.ok) else 1


def main_sweep(argv: Optional[List[str]] = None) -> int:
    """``repro-sweep``: crash-safe, resumable radix sweep."""
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Simulate an (algorithm x k x size) grid on a "
        "simulated machine and write deterministic results JSON, "
        "journaling every completed point so an interrupted run can "
        "resume where it died (--resume) with bit-identical results.",
    )
    parser.add_argument("--machine", default="frontier",
                        help="base machine (frontier/polaris/reference, "
                        "combined with --nodes/--ppn) or a self-contained "
                        "registry name like dragonfly-1024 "
                        "(repro.simnet.machines.get)")
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--ppn", type=int, default=1)
    parser.add_argument("--engine", default="auto", choices=ENGINES,
                        help="simulation core: auto (default) picks the "
                        "class-collapsed engine where eligible; results "
                        "are identical under all three")
    parser.add_argument("--collective", default="allreduce",
                        choices=COLLECTIVES)
    parser.add_argument("--algorithm", default=None,
                        help="restrict to one algorithm (default: every "
                        "algorithm registered for the collective)")
    parser.add_argument("--min-bytes", type=int, default=8)
    parser.add_argument("--max-bytes", type=int, default=1 << 20)
    parser.add_argument("-j", "--jobs", type=int, default=0,
                        help="worker processes (0/1 serial, -1 all "
                        "cores); results are identical at any job count")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="append every completed point to this "
                        "crash-safe JSONL journal as it finishes")
    parser.add_argument("--resume", action="store_true",
                        help="replay the journal and simulate only "
                        "missing or failed points (requires --journal; "
                        "refuses a journal from a different sweep "
                        "configuration)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="disk-backed schedule store shared across "
                        "runs and workers (created if missing)")
    parser.add_argument("--retries", type=int, default=2,
                        help="re-dispatch attempts for chunks whose "
                        "worker process dies (default 2)")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-chunk stall deadline; a hung chunk is "
                        "killed and retried, then quarantined")
    parser.add_argument("--isolate", action="store_true",
                        help="force real worker processes even on a "
                        "single-core host (crash isolation needs a "
                        "process boundary)")
    parser.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="write the results JSON here (default: "
                        "stdout summary only)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="enable observability for the sweep and "
                        "write a metrics snapshot here (JSON; Prometheus "
                        "text beside it as .prom)")
    parser.add_argument("--no-compile", action="store_true",
                        help="interpret schedules op by op instead of "
                        "using compiled program tables (repro.compile); "
                        "results are identical either way")
    args = parser.parse_args(argv)

    import json as _json
    from pathlib import Path

    from .bench.sweep import (
        SweepPoint,
        run_sweep,
        sweep_fingerprint,
        sweep_stats,
    )
    from .obs import OBS
    from .selection.tuner import radix_grid

    if args.resume and not args.journal:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2
    try:
        machine = _machine_arg(args.machine, args.nodes, args.ppn)
        algorithms = (
            [args.algorithm] if args.algorithm
            else algorithms_for(args.collective)
        )
        points: List[SweepPoint] = []
        for alg in algorithms:
            entry = info(args.collective, alg)
            ks = radix_grid(machine.nranks) if entry.takes_k else [None]
            for k in ks:
                for nbytes in default_sizes(args.min_bytes, args.max_bytes):
                    points.append(
                        SweepPoint(args.collective, alg, nbytes, k=k)
                    )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.metrics_out:
        OBS.reset()
        OBS.enable()
    try:
        results = run_sweep(
            points,
            machine,
            jobs=args.jobs,
            journal=args.journal,
            resume=args.resume,
            store=args.store,
            retries=args.retries,
            deadline=args.deadline,
            isolate=args.isolate,
            compiled=not args.no_compile,
            engine=args.engine,
        )
    except KeyboardInterrupt:
        # The journal already holds every completed point (each record
        # is flushed before the next chunk lands), so the run resumes
        # exactly where it died: same command + --resume.
        print("\ninterrupted", file=sys.stderr)
        if args.journal:
            print(f"journal {args.journal} holds the completed points; "
                  "re-run with --resume to continue", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if args.metrics_out:
            OBS.write_metrics(args.metrics_out)
            OBS.disable()
            print(f"wrote {args.metrics_out} (+ .prom)", file=sys.stderr)

    stats = sweep_stats(results)
    print(f"{args.collective} on {machine.name}: {stats.points} points, "
          f"{stats.errors} error(s), "
          f"build hit rate {stats.build_hit_rate:.0%}")
    if args.output:
        # Deterministic artifact: (point, time, error) only — execution
        # metadata like cache hits varies across runs by design.
        doc = {
            "sweep": sweep_fingerprint(points, machine),
            "machine": machine.name,
            "collective": args.collective,
            "points": [
                {
                    "algorithm": r.point.algorithm,
                    "k": r.point.k,
                    "root": r.point.root,
                    "nbytes": r.point.nbytes,
                    "time": r.time,
                    "error": r.error,
                }
                for r in results
            ],
        }
        Path(args.output).write_text(
            _json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.output}")
    return 1 if stats.errors else 0


def main_adapt(argv: Optional[List[str]] = None) -> int:
    """``repro-adapt``: online adaptive selection under drift."""
    from .adapt.scenarios import SCENARIOS

    parser = argparse.ArgumentParser(
        prog="repro-adapt",
        description="Drive the online adaptive selection loop "
        "(repro.adapt) through a named drift scenario on a simulated "
        "machine: a UCB bandit over (algorithm, k) arms, warm-started "
        "from tuner priors and guarded by hysteresis and switch cost, "
        "re-selects as links flap, stragglers migrate, or neighbor jobs "
        "contend.  Reports cumulative regret and time-to-adapt vs the "
        "per-round oracle; the full trail is deterministic and "
        "bit-identical at any --jobs.",
    )
    parser.add_argument("--collective", default="allreduce",
                        choices=COLLECTIVES)
    parser.add_argument("--machine", default="frontier",
                        help="base machine (frontier/polaris/reference, "
                        "combined with --nodes/--ppn) or a self-contained "
                        "registry name like dragonfly-1024 "
                        "(repro.simnet.machines.get)")
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--ppn", type=int, default=1)
    parser.add_argument("--nbytes", type=int, default=65536,
                        help="message size the loop re-selects at "
                        "(default 65536)")
    parser.add_argument("--scenario", default="flap",
                        choices=sorted(SCENARIOS),
                        help="drift scenario (default flap: all links at "
                        "one rank degrade, then heal)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="override the scenario's round count")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the scenario and the bandit "
                        "tie-breaks (default 0)")
    parser.add_argument("--engine", default="auto", choices=ENGINES,
                        help="simulation core for the underlying sweeps; "
                        "the trail is identical under all three")
    parser.add_argument("-j", "--jobs", type=int, default=0,
                        help="worker processes for the underlying sweeps "
                        "(0/1 serial, -1 all cores); the trail is "
                        "identical at any job count")
    parser.add_argument("--check-jobs", type=int, default=None,
                        metavar="N",
                        help="re-run the whole loop at this job count "
                        "and verify the trail is bit-identical")
    parser.add_argument("--hysteresis", type=float, default=None,
                        help="relative margin a challenger arm must win "
                        "by before the loop switches (default 0.05)")
    parser.add_argument("--switch-cost", type=float, default=None,
                        metavar="SECONDS",
                        help="time charged on the first round after an "
                        "arm switch (default 0)")
    parser.add_argument("--cooldown", type=int, default=None,
                        help="rounds the loop must hold an arm after "
                        "switching (default 2)")
    parser.add_argument("--patience", type=int, default=None,
                        help="consecutive bad rounds before the ladder "
                        "escalates to shrink/abort (default 4)")
    parser.add_argument("--max-candidates", type=int, default=None,
                        help="arm universe size: the healthy sweep's "
                        "best N (algorithm, k) pairs (default 8)")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="ignore degraded-link telemetry; adapt on "
                        "round timings alone")
    parser.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="write the full trail JSON here "
                        "(e.g. adapt_report.json)")
    args = parser.parse_args(argv)

    import json as _json
    from dataclasses import replace
    from pathlib import Path

    from .adapt.selector import DEFAULT_POLICY
    from .bench.adapt import run_adapt_bench

    overrides = {}
    if args.hysteresis is not None:
        overrides["hysteresis"] = args.hysteresis
    if args.switch_cost is not None:
        overrides["switch_cost"] = args.switch_cost
    if args.cooldown is not None:
        overrides["cooldown"] = args.cooldown
    if args.patience is not None:
        overrides["patience"] = args.patience
    if args.max_candidates is not None:
        overrides["max_candidates"] = args.max_candidates
    if args.no_telemetry:
        overrides["telemetry"] = False
    try:
        policy = (
            replace(DEFAULT_POLICY, **overrides) if overrides
            else DEFAULT_POLICY
        )
        machine = _machine_arg(args.machine, args.nodes, args.ppn)
        doc = run_adapt_bench(
            machine,
            collective=args.collective,
            nbytes=args.nbytes,
            scenario=args.scenario,
            rounds=args.rounds,
            policy=policy,
            jobs=args.jobs,
            check_jobs=args.check_jobs,
            engine=args.engine,
            seed=args.seed,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # A truncated trail would misstate regret and time-to-adapt —
        # write nothing.
        print("\ninterrupted: no report written", file=sys.stderr)
        return 130

    static, final = doc["static"], doc["final"]
    print(f"{args.collective} n={doc['nbytes']} on {doc['machine']}: "
          f"scenario {doc['scenario']}, {len(doc['rounds'])} round(s)")
    print(f"static winner {static['algorithm']}/k={static['k']}, "
          f"final arm {final['algorithm']}/k={final['k']}, "
          f"{doc['switches']} switch(es)")
    ratio = doc["regret_ratio"]
    print(f"regret {doc['regret'] * 1e6:.2f} us vs static "
          f"{doc['static_regret'] * 1e6:.2f} us"
          + (f" ({ratio:.2f}x)" if ratio is not None else ""))
    for change, tta in sorted(doc["time_to_adapt"].items(),
                              key=lambda item: int(item[0])):
        print(f"change at round {change}: "
              + ("never caught the oracle" if tta is None
                 else f"adapted in {tta} round(s)"))
    if args.check_jobs is not None and args.check_jobs != args.jobs:
        print(f"trail at --jobs {args.jobs} vs {args.check_jobs}: "
              + ("bit-identical" if doc["jobs_invariant"] else "DIVERGED"))
    if doc["aborted"]:
        print("ladder ABORTED: fabric too degraded for any candidate",
              file=sys.stderr)
    if args.output:
        Path(args.output).write_text(
            _json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.output}")
    if doc["aborted"]:
        return 1
    return 0 if doc["jobs_invariant"] else 1


def main_serve(argv: Optional[List[str]] = None) -> int:
    """``repro-serve``: run the schedule-tuning HTTP service."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Boot the schedule-tuning service (repro.server): "
        "an asyncio HTTP daemon serving tuned selections (/select), "
        "content-addressed compiled schedules (/schedule), coalesced "
        "sweeps (POST /tune), Prometheus metrics (/metrics), and the "
        "exportable MPICH-style selection-config artifact (/config).  "
        "The boot sweep tunes every collective over the size grid "
        "before the socket binds; warm-start it from a committed "
        "artifact with --grid.",
        epilog="SIGTERM stops the service cleanly (exit 0); Ctrl-C "
        "exits 130 like every other verb.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port; 0 (default) picks an "
                        "ephemeral one — the chosen URL is printed as "
                        "'serving on http://...' once ready")
    parser.add_argument("--machine", default="reference",
                        help="base machine (frontier/polaris/reference, "
                        "combined with --nodes/--ppn) or a self-contained "
                        "registry name like dragonfly-1024 "
                        "(repro.simnet.machines.get)")
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--ppn", type=int, default=1)
    parser.add_argument("--collectives", nargs="+", default=None,
                        choices=COLLECTIVES, metavar="COLLECTIVE",
                        help="collectives the boot sweep tunes "
                        "(default: the paper's four — bcast, reduce, "
                        "allgather, allreduce)")
    parser.add_argument("--min-bytes", type=int, default=8)
    parser.add_argument("--max-bytes", type=int, default=1 << 18)
    parser.add_argument("--grid", default=None, metavar="PATH",
                        help="warm-start the boot sweep from a committed "
                        "selection-config artifact (repro-tune output "
                        "re-exported via /config, or SelectionConfig."
                        "save); covered points replay recorded timings "
                        "instead of simulating")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="disk store backing schedules and compiled "
                        "artifacts (repro.store); /schedule survives "
                        "restarts and the fingerprint index is rebuilt "
                        "from it at boot")
    parser.add_argument("--engine", default="auto", choices=ENGINES,
                        help="simulation core for the service's sweeps; "
                        "served selections are identical under all three")
    parser.add_argument("-j", "--jobs", type=int, default=0,
                        help="worker processes for the service's sweeps "
                        "(0/1 serial, -1 all cores); selections are "
                        "identical at any job count")
    parser.add_argument("--no-compile", action="store_true",
                        help="interpret schedules op by op instead of "
                        "using compiled program tables; selections are "
                        "identical either way")
    args = parser.parse_args(argv)

    import asyncio
    import signal

    from .obs import OBS
    from .server import TuningService

    # The service's own request counters record unconditionally, but
    # enabling the scope also surfaces cache/store/sweep instrumentation
    # in /metrics — a daemon should be observable by default.
    OBS.reset()
    OBS.enable()
    try:
        machine = _machine_arg(args.machine, args.nodes, args.ppn)
        sizes = [n for n in default_sizes(args.min_bytes, args.max_bytes)]
        service = TuningService(
            machine,
            sizes[::2] + [sizes[-1]],
            collectives=(tuple(args.collectives) if args.collectives
                         else ("bcast", "reduce", "allgather", "allreduce")),
            store=args.store,
            grid=args.grid,
            jobs=args.jobs,
            engine=args.engine,
            compiled=not args.no_compile,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("\ninterrupted during boot sweep", file=sys.stderr)
        return 130

    async def run() -> None:
        await service.start(args.host, args.port)
        print(f"serving on {service.url}", flush=True)
        stop = asyncio.Event()
        asyncio.get_running_loop().add_signal_handler(
            signal.SIGTERM, stop.set
        )
        await stop.wait()
        await service.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\ninterrupted: tuning service stopped", file=sys.stderr)
        return 130
    print("SIGTERM: tuning service stopped cleanly", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_bench())
