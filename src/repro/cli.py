"""Command-line entry points.

Three console scripts are installed with the package:

``repro-bench``
    Run one (or all) of the paper's experiments and print the figure data
    and shape checks: ``repro-bench fig8b``, ``repro-bench --list``,
    ``repro-bench all``.

``repro-tune``
    Generate a tuned MPICH-style selection configuration for a simulated
    machine and write it as JSON: ``repro-tune --machine frontier
    --nodes 32 -o tuned.json``.

``repro-validate``
    Symbolically verify schedules across a parameter grid (the quick
    confidence check after modifying an algorithm):
    ``repro-validate --collective allreduce --max-p 40``.

``repro-chaos``
    Sweep seeded fault scenarios (drops, duplicates, degraded links,
    stragglers, crashes) across the paper's ten generalized algorithms on
    both backends and check the resilience contract — every case either
    completes with correct results or raises a structured fault error:
    ``repro-chaos --p 8 --seed 0``.

``repro-bench-perf``
    Time schedule builds, single simulations, and the combined
    Fig. 8+9 sweep on the cold vs. cached paths and write
    ``BENCH_perf.json``; with ``--baseline`` it also gates against a
    committed report: ``repro-bench-perf -o BENCH_perf.json`` then
    ``repro-bench-perf --smoke --baseline BENCH_perf.json`` in CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench.experiments import ALL_EXPERIMENTS, run_experiment
from .bench.osu import default_sizes
from .core.registry import COLLECTIVES, algorithms_for, build_schedule, info
from .core.validate import verify
from .errors import ReproError
from .selection.tuner import tune
from .simnet.machines import by_name

__all__ = [
    "main_bench",
    "main_tune",
    "main_validate",
    "main_chaos",
    "main_bench_perf",
]


def main_bench(argv: Optional[List[str]] = None) -> int:
    """``repro-bench``: run paper experiments."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures on the "
        "simulated machines.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id (e.g. fig8b), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="also write the full report to a file",
    )
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        for exp_id in sorted(ALL_EXPERIMENTS):
            print(exp_id)
        return 0

    ids = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    failures = 0
    sections = []
    for exp_id in ids:
        try:
            result = run_experiment(exp_id)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        summary = result.summary()
        print(summary)
        print()
        sections.append(summary)
        if not result.all_ok:
            failures += 1
    if args.output:
        from pathlib import Path

        Path(args.output).write_text("\n\n".join(sections) + "\n")
        print(f"wrote report to {args.output}")
    if failures:
        print(f"{failures} experiment(s) diverged from the paper's claims",
              file=sys.stderr)
    return 1 if failures else 0


def main_tune(argv: Optional[List[str]] = None) -> int:
    """``repro-tune``: generate a tuned selection configuration."""
    parser = argparse.ArgumentParser(
        prog="repro-tune",
        description="Exhaustively sweep the simulator and emit an "
        "MPICH-style selection configuration (paper §VI-G).",
    )
    parser.add_argument("--machine", default="frontier",
                        choices=["frontier", "polaris", "reference"])
    parser.add_argument("--nodes", type=int, default=32)
    parser.add_argument("--ppn", type=int, default=1)
    parser.add_argument("--min-bytes", type=int, default=8)
    parser.add_argument("--max-bytes", type=int, default=1 << 22)
    parser.add_argument("-j", "--jobs", type=int, default=0,
                        help="worker processes for the sweep (0/1 serial, "
                        "-1 all cores); winners are identical at any "
                        "job count")
    parser.add_argument("-o", "--output", default=None,
                        help="write JSON here (default: stdout)")
    args = parser.parse_args(argv)

    try:
        machine = by_name(args.machine, args.nodes, args.ppn)
        sizes = [n for n in default_sizes(args.min_bytes, args.max_bytes)]
        # Tuning every power of two is slow in simulation; every other
        # power of two bounds the sweep while keeping cutoffs tight.
        table = tune(machine, sizes[::2] + [sizes[-1]], jobs=args.jobs)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output:
        table.save(args.output)
        print(f"wrote {args.output}")
        print(table.describe())
    else:
        print(table.to_json())
    return 0


def main_validate(argv: Optional[List[str]] = None) -> int:
    """``repro-validate``: symbolic verification sweep."""
    parser = argparse.ArgumentParser(
        prog="repro-validate",
        description="Symbolically verify collective schedules across a "
        "(p, k, root) grid.",
    )
    parser.add_argument("--collective", default=None, choices=COLLECTIVES)
    parser.add_argument("--algorithm", default=None)
    parser.add_argument("--max-p", type=int, default=24)
    parser.add_argument(
        "--dump",
        default=None,
        metavar="PATH",
        help="additionally write one verified schedule as JSON "
        "(requires --collective, --algorithm and --dump-p)",
    )
    parser.add_argument("--dump-p", type=int, default=8)
    parser.add_argument("--dump-k", type=int, default=None)
    args = parser.parse_args(argv)

    if args.dump:
        if not (args.collective and args.algorithm):
            print("error: --dump needs --collective and --algorithm",
                  file=sys.stderr)
            return 2
        from .core.serialize import save_schedule

        try:
            sched = build_schedule(
                args.collective, args.algorithm, args.dump_p, k=args.dump_k
            )
            verify(sched)
            save_schedule(sched, args.dump)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"verified and wrote {sched.describe()} to {args.dump}")
        return 0

    colls = [args.collective] if args.collective else list(COLLECTIVES)
    count = 0
    for coll in colls:
        algs = [args.algorithm] if args.algorithm else algorithms_for(coll)
        for alg in algs:
            try:
                entry = info(coll, alg)
            except ReproError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            for p in range(1, args.max_p + 1):
                ks = [None]
                if entry.takes_k:
                    ks = sorted({entry.min_k, 2, 3, 4, p, p + 1} - {0, 1}
                                | ({1} if entry.min_k == 1 else set()))
                    ks = [k for k in ks if k >= entry.min_k]
                roots = [0, p - 1] if entry.takes_root and p > 1 else [0]
                for k in ks:
                    for root in roots:
                        try:
                            verify(build_schedule(coll, alg, p, k=k, root=root))
                            count += 1
                        except ReproError as exc:
                            print(
                                f"FAIL {coll}/{alg} p={p} k={k} root={root}: "
                                f"{exc}",
                                file=sys.stderr,
                            )
                            return 1
    print(f"verified {count} schedules — all correct")
    return 0


def main_chaos(argv: Optional[List[str]] = None) -> int:
    """``repro-chaos``: fault-injection sweep over the algorithm suite."""
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Sweep seeded fault scenarios across every generalized "
        "algorithm on the threaded transport and the simulator, asserting "
        "each case either completes correctly or fails with a structured "
        "diagnosis.",
    )
    parser.add_argument("--p", type=int, default=8,
                        help="ranks per schedule (default 8)")
    parser.add_argument("--count", type=int, default=64,
                        help="elements per buffer (default 64)")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed for every scenario")
    parser.add_argument("--backend", default=None,
                        choices=["threaded", "sim"],
                        help="restrict to one backend (default: both)")
    parser.add_argument("--scenario", default=None,
                        help="restrict to one scenario by name")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-receive timeout for the threaded "
                        "transport (seconds)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every case, not just the summary")
    args = parser.parse_args(argv)

    from .faults.chaos import default_scenarios, run_chaos, summarize

    scenarios = default_scenarios(args.seed, args.p)
    if args.scenario is not None:
        scenarios = tuple(s for s in scenarios if s.name == args.scenario)
        if not scenarios:
            known = ", ".join(s.name for s in default_scenarios(args.seed,
                                                                args.p))
            print(f"error: unknown scenario {args.scenario!r} "
                  f"(known: {known})", file=sys.stderr)
            return 2
    backends = [args.backend] if args.backend else ["threaded", "sim"]
    try:
        results = run_chaos(
            scenarios,
            p=args.p,
            count=args.count,
            seed=args.seed,
            backends=backends,
            timeout=args.timeout,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.verbose:
        for r in results:
            print(r.describe())
        print()
    print(summarize(results))
    violations = [r for r in results if not r.ok]
    return 1 if violations else 0


def main_bench_perf(argv: Optional[List[str]] = None) -> int:
    """``repro-bench-perf``: performance-regression benchmark."""
    parser = argparse.ArgumentParser(
        prog="repro-bench-perf",
        description="Time schedule builds, single simulations, and the "
        "combined Fig. 8+9 sweep on the cold vs. cached paths; "
        "optionally gate against a committed baseline report.",
    )
    parser.add_argument("--machine", default="frontier",
                        choices=["frontier", "polaris", "reference"])
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--ppn", type=int, default=1)
    parser.add_argument("--smoke", action="store_true",
                        help="trimmed grid for CI (seconds, not minutes)")
    parser.add_argument("-j", "--jobs", type=int, action="append",
                        default=None, metavar="N",
                        help="also time the cached sweep at this job "
                        "count (repeatable; default: 4)")
    parser.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="write the JSON report here "
                        "(e.g. BENCH_perf.json)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="committed report to gate against; exits 1 "
                        "if schedule-build time regresses")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="allowed regression factor vs the baseline "
                        "(default 2.0)")
    args = parser.parse_args(argv)

    from .bench.perf import (
        check_regression,
        format_report,
        load_report,
        run_perf,
        write_report,
    )

    try:
        report = run_perf(
            machine_name=args.machine,
            nodes=args.nodes,
            ppn=args.ppn,
            smoke=args.smoke,
            jobs_levels=tuple(args.jobs) if args.jobs else (4,),
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_report(report))
    if args.output:
        write_report(report, args.output)
        print(f"wrote {args.output}")
    if args.baseline:
        try:
            baseline = load_report(args.baseline)
        except (OSError, ValueError, ReproError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        failures = check_regression(report, baseline, factor=args.factor)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.baseline} "
              f"(factor {args.factor:.1f}x)")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_bench())
