"""Exhaustive tuner: sweep the simulator, emit a selection table (§VI-G).

The paper "exhaustively benchmarked every algorithm in MPICH to determine
the optimal algorithm-parameters" and distilled the result into a new
MPICH selection configuration.  This module does the same against the
simulated machine: sweep every registered algorithm (generalized ones over
a radix grid) across a message-size grid, take the argmin per size, and
merge adjacent sizes with identical winners into compact byte-range rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.registry import algorithms_for, info
from ..errors import SelectionError
from ..faults.plan import FaultPlan
from ..simnet.machine import MachineSpec
from ..simnet.noise import NoiseModel
from .table import Choice, Rule, SelectionTable

__all__ = [
    "DEFAULT_COLLECTIVES",
    "radix_grid",
    "sweep_points",
    "sweep_collective",
    "SweepEntry",
    "table_from_sweeps",
    "tune",
]

#: The collectives :func:`tune` (and the tuning service) sweeps by
#: default — the four the paper tunes in §VI-G.
DEFAULT_COLLECTIVES: Tuple[str, ...] = (
    "bcast", "reduce", "allgather", "allreduce"
)


def radix_grid(p: int, *, min_k: int = 2, extras: Sequence[int] = (3, 5)) -> List[int]:
    """The radix grid the paper's sweeps use: powers of two from ``min_k``
    through ``p``, plus ``p`` itself and the odd near-optimal radices.

    >>> radix_grid(16)
    [2, 3, 4, 5, 8, 16]
    >>> radix_grid(8, min_k=1)
    [1, 2, 3, 4, 5, 8]
    """
    if p < 1:
        raise SelectionError(f"p must be >= 1, got {p}")
    grid = set()
    k = max(min_k, 1)
    while k <= p:
        grid.add(k)
        k *= 2
    grid.add(max(p, min_k))
    for extra in extras:
        if min_k <= extra <= p:
            grid.add(extra)
    return sorted(grid)


@dataclass(frozen=True)
class SweepEntry:
    """One simulated configuration."""

    choice: Choice
    nbytes: int
    time: float  # seconds


@dataclass
class SweepResult:
    """All configurations simulated for one collective on one machine."""

    collective: str
    machine: str
    entries: List[SweepEntry] = field(default_factory=list)

    def best(self, nbytes: int) -> SweepEntry:
        candidates = [e for e in self.entries if e.nbytes == nbytes]
        if not candidates:
            raise SelectionError(
                f"no sweep entries for {self.collective} at n={nbytes}"
            )
        return min(candidates, key=lambda e: e.time)

    def times_for(self, choice: Choice) -> Dict[int, float]:
        return {
            e.nbytes: e.time
            for e in self.entries
            if e.choice == choice
        }


def sweep_points(
    collective: str,
    machine: MachineSpec,
    sizes: Sequence[int],
    *,
    algorithms: Optional[Sequence[str]] = None,
    root: int = 0,
    skip: Sequence[str] = ("linear",),
) -> List["SweepPoint"]:
    """The exact point grid :func:`sweep_collective` would simulate.

    One :class:`~repro.bench.sweep.SweepPoint` per (algorithm, radix,
    size) combination, in the tuner's deterministic enumeration order —
    generalized algorithms expand over :func:`radix_grid`, fixed-radix
    ones contribute a single ``k=None`` row.  Factored out of
    :func:`sweep_collective` so other layers can agree with the tuner
    about *which* sweep a query implies without running it: the tuning
    service keys its single-flight request coalescing on
    :func:`repro.bench.sweep.sweep_fingerprint` over this list, so N
    concurrent identical ``/tune`` queries hash to one sweep.
    """
    from ..bench.sweep import SweepPoint
    from ..simnet.machines import resolve as resolve_machine

    machine = resolve_machine(machine)
    p = machine.nranks
    names = list(algorithms) if algorithms else algorithms_for(collective)
    points: List[SweepPoint] = []
    for name in names:
        if name in skip:
            continue
        entry = info(collective, name)
        if entry.takes_k:
            ks: List[Optional[int]] = list(
                radix_grid(p, min_k=entry.min_k)
            )
        else:
            ks = [None]
        for k in ks:
            for nbytes in sizes:
                points.append(
                    SweepPoint(
                        collective,
                        name,
                        nbytes,
                        k=k,
                        root=root if entry.takes_root else 0,
                    )
                )
    return points


def sweep_collective(
    collective: str,
    machine: MachineSpec,
    sizes: Sequence[int],
    *,
    algorithms: Optional[Sequence[str]] = None,
    root: int = 0,
    noise: Optional[NoiseModel] = None,
    faults: Optional["FaultPlan"] = None,
    skip: Sequence[str] = ("linear",),
    jobs: int = 0,
    check: bool = False,
    compiled: bool = True,
    engine: str = "auto",
    priors: Optional[Mapping[Tuple, float]] = None,
) -> SweepResult:
    """Simulate every (algorithm, radix, size) combination.

    ``skip`` drops algorithms never worth tuning over (linear is
    quadratically bad at these scales); pass ``skip=()`` to include them.
    ``jobs >= 2`` fans the grid out over the parallel sweep engine
    (:func:`repro.bench.sweep.run_sweep`); the winners are provably
    independent of ``jobs`` (see ``tests/test_selection.py``).
    ``faults`` sweeps under a fault plan — degraded-mode tuning: the
    winners then reflect link delay/bandwidth penalties, which is how
    recovery re-picks ``(algorithm, k)`` after a degradation
    (:func:`repro.recovery.retune.retune_degraded`).
    ``check=True`` statically analyzes every distinct (algorithm, radix)
    schedule through :mod:`repro.check` before any simulation and
    refuses to tune over one with error findings — a table must never
    recommend a schedule that deadlocks or corrupts data.  Reports
    memoize by fingerprint, so the pre-pass costs each schedule once.
    ``compiled=False`` forces op-by-op IR interpretation in the
    simulator; the times — and therefore the winners — are bit-identical
    either way (see :mod:`repro.compile`).  ``engine`` selects the
    simulation core per point (:data:`~repro.simnet.simulate.ENGINES`) —
    also result-transparent, so tables tuned under ``"collapsed"`` match
    tables tuned under ``"materialized"`` bit for bit.  ``machine`` may
    be a registry name (:func:`repro.simnet.machines.get`).
    ``priors`` warm-starts the sweep from recorded timings — a mapping
    from ``(collective, algorithm, k, root, nbytes)`` to seconds, as
    exported by
    :meth:`repro.server.SelectionConfig.sweep_priors` — and only the
    points *absent* from it are simulated.  Simulated times are
    deterministic, so a prior recorded on the same machine equals what
    re-simulation would produce and the entries (and every winner
    derived from them) are bit-identical to a cold sweep; priors only
    apply to healthy sweeps (they are ignored under ``noise``/``faults``,
    whose times they do not describe).
    """
    # Imported lazily: repro.bench.sweep imports radix_grid from this
    # module at import time, so the reverse dependency must resolve at
    # call time to keep the module graph acyclic.
    from ..bench.sweep import run_sweep, sweep_errors
    from ..simnet.machines import resolve as resolve_machine

    machine = resolve_machine(machine)
    p = machine.nranks
    result = SweepResult(collective=collective, machine=machine.name)
    points = sweep_points(
        collective, machine, sizes,
        algorithms=algorithms, root=root, skip=skip,
    )
    if check:
        from ..check import check_schedule

        seen: set = set()
        for point in points:
            config = (point.algorithm, point.k, point.root)
            if config in seen:
                continue
            seen.add(config)
            report = check_schedule(
                collective, point.algorithm, p, k=point.k, root=point.root
            )
            if not report.ok:
                raise SelectionError(
                    f"refusing to tune over a broken schedule: "
                    f"{report.describe(max_findings=3)}"
                )
    known: Dict[int, float] = {}
    if priors and noise is None and faults is None:
        for i, pt in enumerate(points):
            time = priors.get(
                (pt.collective, pt.algorithm, pt.k, pt.root, pt.nbytes)
            )
            if time is not None:
                known[i] = float(time)
    missing = [pt for i, pt in enumerate(points) if i not in known]
    if missing:
        results = run_sweep(missing, machine, jobs=jobs, noise=noise,
                            faults=faults, compiled=compiled, engine=engine)
        errors = sweep_errors(results)
        if errors:
            raise SelectionError(
                f"{collective} sweep: {len(errors)} point(s) failed: "
                + "; ".join(errors[:4])
            )
    else:
        results = []
    # Reassemble in the full enumeration order so entries — and every
    # winner derived from them — are position-identical to a cold sweep.
    simulated = iter(results)
    for i, pt in enumerate(points):
        time = known[i] if i in known else next(simulated).time
        result.entries.append(
            SweepEntry(
                choice=Choice(pt.algorithm, pt.k),
                nbytes=pt.nbytes,
                time=time,
            )
        )
    return result


def table_from_sweeps(
    sweeps: Mapping[str, SweepResult],
    sizes: Sequence[int],
    *,
    name: str = "unnamed",
) -> SelectionTable:
    """Distill per-collective sweeps into a selection table.

    The merge step of :func:`tune`, exposed so any source of
    :class:`SweepResult` values — a fresh sweep, a tuning-service merge
    of incremental ``/tune`` results, or timings replayed from an
    exported selection-config artifact — distills to the *same* table
    the one-shot tuner would emit: winner per size, adjacent identical
    winners merged into byte-range rules (first rule extends to 0, last
    unbounded), plus the standard fallbacks.  ``sweeps`` maps collective
    name to its :class:`SweepResult`; iteration order becomes rule
    order, so pass an ordered mapping.
    """
    sorted_sizes = sorted(set(int(s) for s in sizes))
    if not sorted_sizes:
        raise SelectionError("table_from_sweeps needs at least one size")
    table = SelectionTable(name=name)
    for collective, sweep in sweeps.items():
        winners: List[Tuple[int, Choice]] = [
            (n, sweep.best(n).choice) for n in sorted_sizes
        ]
        # Merge runs of identical winners into byte ranges.
        runs: List[Tuple[int, Optional[int], Choice]] = []
        start_idx = 0
        for i in range(1, len(winners) + 1):
            if i == len(winners) or winners[i][1] != winners[start_idx][1]:
                lo = 0 if start_idx == 0 else winners[start_idx][0]
                hi = None if i == len(winners) else winners[i][0]
                runs.append((lo, hi, winners[start_idx][1]))
                start_idx = i
        for lo, hi, choice in runs:
            table.add(
                Rule(
                    collective,
                    choice,
                    min_bytes=lo,
                    max_bytes=hi,
                )
            )
    table.fallback["gather"] = Choice("binomial")
    table.fallback["scatter"] = Choice("binomial")
    table.fallback["reduce_scatter"] = Choice("recursive_halving")
    table.fallback["barrier"] = Choice("dissemination")
    table.fallback["alltoall"] = Choice("pairwise")
    return table


def tune(
    machine: MachineSpec,
    sizes: Sequence[int],
    *,
    collectives: Sequence[str] = DEFAULT_COLLECTIVES,
    noise: Optional[NoiseModel] = None,
    faults: Optional["FaultPlan"] = None,
    name: Optional[str] = None,
    jobs: int = 0,
    check: bool = False,
    compiled: bool = True,
    engine: str = "auto",
    priors: Optional[Mapping[Tuple, float]] = None,
) -> SelectionTable:
    """Produce a selection table tuned for ``machine``.

    Per collective: winner per size, then adjacent sizes with identical
    winners merge into one rule.  The byte-range boundaries sit at the
    sweep sizes themselves (the winner measured at size ``s`` governs
    ``[s, next_s)``), the first rule extends to 0 and the last is
    unbounded — matching how MPICH cutoff tables are written.

    ``jobs`` parallelizes the underlying sweeps without affecting the
    chosen winners: times are bit-identical to the serial sweep, so the
    argmin per size — and therefore the emitted table — cannot change.
    ``check=True`` gates every candidate schedule through the static
    analysis suite first (see :func:`sweep_collective`).
    ``compiled=False`` (the CLI's ``--no-compile``) disables the
    compiled simulator feed; emitted tables are identical regardless.
    So is ``engine`` (the CLI's ``--engine``): the collapsed core is
    bit-identical where eligible and falls back where not, so it can
    only change tuning wall-clock, never a winner.  And so is
    ``priors`` (see :func:`sweep_collective`): points covered by a
    recorded timing artifact are served from it instead of
    re-simulated, which is the tuning service's warm start — an
    exported selection config round-trips into a bit-identical table
    at a fraction of the cold cost.
    """
    from ..simnet.machines import resolve as resolve_machine

    machine = resolve_machine(machine)
    sorted_sizes = sorted(set(int(s) for s in sizes))
    if not sorted_sizes:
        raise SelectionError("tune needs at least one message size")
    sweeps: Dict[str, SweepResult] = {}
    for collective in collectives:
        sweeps[collective] = sweep_collective(
            collective, machine, sorted_sizes, noise=noise, faults=faults,
            jobs=jobs, check=check, compiled=compiled, engine=engine,
            priors=priors,
        )
    return table_from_sweeps(
        sweeps, sorted_sizes, name=name or f"tuned-{machine.name}"
    )
