"""Algorithm selection tables — the MPICH tuning-file mechanism (§VI-G).

MPICH picks collective algorithms from a JSON selection configuration
keyed on communicator size and message size; the paper ships a new
configuration that routes exascale-relevant cases to the generalized
algorithms with tuned radices.  This module is that mechanism: an ordered
rule list, first match wins, JSON round-trippable, validated against the
algorithm registry at load time.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.registry import COLLECTIVES, info
from ..errors import SelectionError

__all__ = ["Rule", "Choice", "SelectionTable"]

_INF = float("inf")


@dataclass(frozen=True)
class Choice:
    """An algorithm plus (optionally) its radix."""

    algorithm: str
    k: Optional[int] = None

    def describe(self) -> str:
        return self.algorithm if self.k is None else f"{self.algorithm}(k={self.k})"


@dataclass(frozen=True)
class Rule:
    """One selection rule: a (collective, ranks, bytes) region → a Choice.

    Ranges are half-open on the right with ``None`` meaning unbounded:
    ``min_bytes=0, max_bytes=65536`` covers messages strictly under 64 KiB.
    """

    collective: str
    choice: Choice
    min_ranks: int = 1
    max_ranks: Optional[int] = None
    min_bytes: int = 0
    max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.collective not in COLLECTIVES:
            raise SelectionError(f"unknown collective {self.collective!r}")
        if self.min_ranks < 1:
            raise SelectionError("min_ranks must be >= 1")
        if self.max_ranks is not None and self.max_ranks <= self.min_ranks:
            raise SelectionError(
                f"empty rank range [{self.min_ranks}, {self.max_ranks})"
            )
        if self.min_bytes < 0:
            raise SelectionError("min_bytes must be >= 0")
        if self.max_bytes is not None and self.max_bytes <= self.min_bytes:
            raise SelectionError(
                f"empty byte range [{self.min_bytes}, {self.max_bytes})"
            )
        # Validate the choice against the registry eagerly: a typo in a
        # tuning file should fail at load, not at the first collective.
        from ..errors import ScheduleError

        try:
            entry = info(self.collective, self.choice.algorithm)
        except ScheduleError as exc:
            raise SelectionError(str(exc)) from exc
        if self.choice.k is not None and not entry.takes_k:
            raise SelectionError(
                f"{self.collective}/{self.choice.algorithm} takes no radix"
            )

    def matches(self, nranks: int, nbytes: int) -> bool:
        if nranks < self.min_ranks:
            return False
        if self.max_ranks is not None and nranks >= self.max_ranks:
            return False
        if nbytes < self.min_bytes:
            return False
        if self.max_bytes is not None and nbytes >= self.max_bytes:
            return False
        return True


@dataclass
class SelectionTable:
    """An ordered, first-match-wins list of selection rules.

    ``fallback`` supplies per-collective defaults when no rule matches
    (mirroring MPICH's built-in defaults under a partial tuning file).
    """

    rules: List[Rule] = field(default_factory=list)
    fallback: Dict[str, Choice] = field(default_factory=dict)
    name: str = "unnamed"

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def select(self, collective: str, nranks: int, nbytes: int) -> Choice:
        """The algorithm this table picks for a configuration."""
        if collective not in COLLECTIVES:
            raise SelectionError(f"unknown collective {collective!r}")
        for rule in self.rules:
            if rule.collective == collective and rule.matches(nranks, nbytes):
                return rule.choice
        if collective in self.fallback:
            return self.fallback[collective]
        raise SelectionError(
            f"table {self.name!r} has no rule for {collective} at "
            f"p={nranks}, n={nbytes} and no fallback"
        )

    def add(self, rule: Rule) -> "SelectionTable":
        """Append a rule (builder style)."""
        self.rules.append(rule)
        return self

    def coverage_errors(
        self,
        collective: str,
        nranks: int,
        sizes: Sequence[int],
    ) -> List[int]:
        """Sizes in ``sizes`` this table cannot select for (should be
        empty for a production table)."""
        missing = []
        for n in sizes:
            try:
                self.select(collective, nranks, n)
            except SelectionError:
                missing.append(n)
        return missing

    # ------------------------------------------------------------------
    # JSON round trip (the "one environment variable" file of §VI-G)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to the §VI-G configuration-file JSON format."""
        payload = {
            "name": self.name,
            "rules": [
                {
                    "collective": r.collective,
                    "algorithm": r.choice.algorithm,
                    "k": r.choice.k,
                    "min_ranks": r.min_ranks,
                    "max_ranks": r.max_ranks,
                    "min_bytes": r.min_bytes,
                    "max_bytes": r.max_bytes,
                }
                for r in self.rules
            ],
            "fallback": {
                coll: {"algorithm": c.algorithm, "k": c.k}
                for coll, c in self.fallback.items()
            },
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "SelectionTable":
        """Parse :meth:`to_json` output, validating every rule."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SelectionError(f"malformed selection JSON: {exc}") from exc
        if not isinstance(payload, dict) or "rules" not in payload:
            raise SelectionError("selection JSON must be an object with 'rules'")
        table = cls(name=str(payload.get("name", "unnamed")))
        for raw in payload["rules"]:
            table.add(
                Rule(
                    collective=raw["collective"],
                    choice=Choice(raw["algorithm"], raw.get("k")),
                    min_ranks=raw.get("min_ranks", 1),
                    max_ranks=raw.get("max_ranks"),
                    min_bytes=raw.get("min_bytes", 0),
                    max_bytes=raw.get("max_bytes"),
                )
            )
        for coll, raw in payload.get("fallback", {}).items():
            if coll not in COLLECTIVES:
                raise SelectionError(f"fallback for unknown collective {coll!r}")
            table.fallback[coll] = Choice(raw["algorithm"], raw.get("k"))
            info(coll, raw["algorithm"])  # validate
        return table

    def save(self, path: Union[str, Path]) -> None:
        """Write the table to ``path`` as JSON (see :meth:`to_json`)."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SelectionTable":
        """Read a table previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable dump (for reports and the CLI)."""
        lines = [f"selection table {self.name!r}: {len(self.rules)} rules"]
        for r in self.rules:
            hi_r = "inf" if r.max_ranks is None else str(r.max_ranks)
            hi_b = "inf" if r.max_bytes is None else str(r.max_bytes)
            lines.append(
                f"  {r.collective:14s} p∈[{r.min_ranks},{hi_r}) "
                f"n∈[{r.min_bytes},{hi_b}) → {r.choice.describe()}"
            )
        for coll, c in sorted(self.fallback.items()):
            lines.append(f"  {coll:14s} fallback → {c.describe()}")
        return "\n".join(lines)
