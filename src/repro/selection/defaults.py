"""Built-in selection policies: the baselines of the paper's evaluation.

Two fixed policies play the roles of the paper's comparison points
(§VI-B):

* :func:`mpich_policy` — the open-source default cutoffs: binomial for
  small messages, recursive doubling (or scatter+allgather) for medium,
  ring/Rabenseifner for large.  When the paper "fixes MPICH's algorithm
  selection to the non-generalized version of the comparative algorithm",
  this is the selection being fixed.
* :func:`vendor_policy` — the proprietary-vendor stand-in (Cray MPI's
  role).  It shares MPICH's small/medium behaviour but *never switches
  MPI_Reduce off the binomial tree*, reproducing the mis-selection the
  paper infers from its >4.5× large-reduce speedup over Cray MPI
  (Fig. 9a), and it holds recursive doubling for allreduce up to a larger
  cutoff than is optimal.

Cutoff constants follow MPICH's collective selection logic (Thakur et al.
[36]/[37]: 12 KiB bcast short cutoff, 512 KiB bcast medium cutoff, 2 KiB
allreduce short cutoff, 80 KiB allgather cutoff).
"""

from __future__ import annotations

from .table import Choice, Rule, SelectionTable

__all__ = [
    "mpich_policy",
    "vendor_policy",
    "fixed_policy",
    "BCAST_SHORT_CUTOFF",
    "BCAST_MEDIUM_CUTOFF",
    "ALLREDUCE_SHORT_CUTOFF",
    "ALLGATHER_CUTOFF",
    "REDUCE_SHORT_CUTOFF",
]

BCAST_SHORT_CUTOFF = 12 * 1024
BCAST_MEDIUM_CUTOFF = 512 * 1024
ALLREDUCE_SHORT_CUTOFF = 2 * 1024
ALLGATHER_CUTOFF = 80 * 1024
REDUCE_SHORT_CUTOFF = 64 * 1024


def mpich_policy() -> SelectionTable:
    """The MPICH-default fixed-radix selection.

    One deliberate deviation from stock MPICH: the large-message bcast and
    allgather stay on the recursive-doubling family instead of switching
    to ring/van-de-Geijn.  Ring's real-world advantage is congestion-free
    neighbor traffic; our dragonfly model does not penalize the butterfly
    patterns enough for ring ever to win at 1 process per node, so using
    ring as the large-message baseline would inflate every Fig. 9 speedup
    against a strawman (see EXPERIMENTS.md).  The recursive-doubling
    baseline keeps the comparison honest.
    """
    t = SelectionTable(name="mpich-default")
    # Bcast: binomial short, scatter + recursive-doubling allgather long.
    t.add(Rule("bcast", Choice("binomial"), max_bytes=BCAST_SHORT_CUTOFF))
    t.add(Rule("bcast", Choice("recursive_doubling"), min_bytes=BCAST_SHORT_CUTOFF))
    # Reduce: binomial short, Rabenseifner (reduce-scatter + gather) long.
    t.add(Rule("reduce", Choice("binomial"), max_bytes=REDUCE_SHORT_CUTOFF))
    t.add(
        Rule("reduce", Choice("reduce_scatter_gather"), min_bytes=REDUCE_SHORT_CUTOFF)
    )
    # Allreduce: recursive doubling short, Rabenseifner long.
    t.add(
        Rule(
            "allreduce",
            Choice("recursive_doubling"),
            max_bytes=ALLREDUCE_SHORT_CUTOFF,
        )
    )
    t.add(
        Rule(
            "allreduce",
            Choice("reduce_scatter_allgather"),
            min_bytes=ALLREDUCE_SHORT_CUTOFF,
        )
    )
    # Allgather: recursive doubling (see docstring).
    t.add(Rule("allgather", Choice("recursive_doubling")))
    # Rooted helpers.
    t.fallback["gather"] = Choice("binomial")
    t.fallback["scatter"] = Choice("binomial")
    t.fallback["reduce_scatter"] = Choice("recursive_halving")
    t.fallback["barrier"] = Choice("dissemination")
    t.fallback["alltoall"] = Choice("pairwise")
    return t


def vendor_policy() -> SelectionTable:
    """The proprietary-vendor stand-in ("Cray MPI" role, §VI-B).

    Differences from :func:`mpich_policy`, each mirroring a behaviour the
    paper observed or inferred on Frontier:

    * MPI_Reduce stays binomial at *every* size — the inferred
      mis-selection behind the paper's 4.5× large-message reduce speedup;
    * MPI_Allreduce holds recursive doubling to 64 KiB before switching —
      "Cray MPI is likely using a sub-optimal algorithm" in the mid range.
    """
    t = SelectionTable(name="vendor")
    t.add(Rule("bcast", Choice("binomial"), max_bytes=BCAST_SHORT_CUTOFF))
    t.add(Rule("bcast", Choice("recursive_doubling"), min_bytes=BCAST_SHORT_CUTOFF))
    t.add(Rule("reduce", Choice("binomial")))
    t.add(Rule("allreduce", Choice("recursive_doubling"), max_bytes=64 * 1024))
    t.add(Rule("allreduce", Choice("reduce_scatter_allgather"), min_bytes=64 * 1024))
    t.add(Rule("allgather", Choice("recursive_doubling")))
    t.fallback["gather"] = Choice("binomial")
    t.fallback["scatter"] = Choice("binomial")
    t.fallback["reduce_scatter"] = Choice("recursive_halving")
    t.fallback["barrier"] = Choice("dissemination")
    t.fallback["alltoall"] = Choice("pairwise")
    return t


def fixed_policy(collective: str, algorithm: str, k: int | None = None) -> SelectionTable:
    """A one-rule policy pinning a collective to one algorithm — how the
    paper isolates generalization gains ("we fixed MPICH's algorithm
    selection to the non-generalized version", §VI-B)."""
    t = SelectionTable(name=f"fixed-{collective}-{algorithm}")
    t.add(Rule(collective, Choice(algorithm, k)))
    return t
