"""Algorithm selection — MPICH-style tuning tables, default policies, and
the exhaustive tuner (paper §VI-G)."""

from .defaults import (
    ALLGATHER_CUTOFF,
    ALLREDUCE_SHORT_CUTOFF,
    BCAST_MEDIUM_CUTOFF,
    BCAST_SHORT_CUTOFF,
    REDUCE_SHORT_CUTOFF,
    fixed_policy,
    mpich_policy,
    vendor_policy,
)
from .table import Choice, Rule, SelectionTable
from .tuner import SweepEntry, radix_grid, sweep_collective, tune

__all__ = [
    "Choice",
    "Rule",
    "SelectionTable",
    "mpich_policy",
    "vendor_policy",
    "fixed_policy",
    "tune",
    "sweep_collective",
    "radix_grid",
    "SweepEntry",
    "BCAST_SHORT_CUTOFF",
    "BCAST_MEDIUM_CUTOFF",
    "ALLREDUCE_SHORT_CUTOFF",
    "ALLGATHER_CUTOFF",
    "REDUCE_SHORT_CUTOFF",
]
