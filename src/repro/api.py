"""The single public facade: ``build`` → ``simulate`` / ``execute``.

Everything the package can do funnels through three keyword-only entry
points, re-exported from :mod:`repro`:

* :func:`build` — compile a generalized collective algorithm to its
  :class:`~repro.core.schedule.Schedule` IR;
* :func:`simulate` — time a schedule on a simulated machine
  (discrete-event, multi-port, hierarchical);
* :func:`execute` — move real NumPy data through a schedule and check it
  against the collective's reference semantics, on either the lockstep
  or the genuinely threaded backend.

Keyword-only parameters are deliberate: the historical entry points grew
positionally (``run_collective("allreduce", "rm", 16, 1024)``) until the
third and fourth arguments were guess-what-this-is integers.  The facade
makes every count/radix/root explicit at the call site::

    import repro

    sched = repro.build("allreduce", "recursive_multiplying", p=64, k=4)
    res = repro.simulate(sched, repro.frontier(nodes=64, ppn=1),
                         nbytes=65536)
    run = repro.execute("allreduce", "recursive_multiplying",
                        p=16, count=1024, k=4)

The pre-facade spellings (``run_collective``, ``build_schedule``,
``execute_threaded``, positional-``nbytes`` ``simulate``, schedule-first
``execute``) warned for five releases and are now **removed** — the
implementation modules (:mod:`repro.runtime`, :mod:`repro.simnet`,
:mod:`repro.core`) they delegated to are unchanged for code that imports
them directly.  The one remaining shim is the old ``collect_timeline=``
keyword on :func:`simulate`, which maps onto ``timeline=`` with a single
:class:`DeprecationWarning` per process.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from .core.registry import build_schedule as _build_schedule
from .core.schedule import Schedule
from .errors import ExecutionError
from .obs import Obs
from .runtime.buffers import (
    check_outputs,
    initial_buffers,
    make_inputs,
    reference_result,
)
from .runtime.executor import CollectiveRun, execute as _execute_lockstep
from .runtime.ops import SUM, ReduceOp
from .runtime.threaded import execute_threaded as _execute_threaded
from .simnet.simulate import ENGINES, SimResult, simulate as _simulate
from .simnet.machines import resolve as _resolve_machine

__all__ = ["build", "simulate", "execute", "BACKENDS", "ENGINES"]

#: Execution backends accepted by :func:`execute`.
BACKENDS = ("lockstep", "threaded")


def build(
    collective: str,
    algorithm: str,
    *,
    p: int,
    k: Optional[int] = None,
    root: int = 0,
) -> Schedule:
    """Compile ``algorithm`` for ``collective`` over ``p`` ranks.

    ``k`` is the generalization radix (each algorithm's default when
    omitted); ``root`` matters only for rooted collectives.  Returns the
    validated :class:`~repro.core.schedule.Schedule` IR that every other
    entry point consumes.

    >>> import repro
    >>> repro.build("allreduce", "recursive_multiplying", p=9, k=3).nranks
    9
    """
    return _build_schedule(collective, algorithm, p, k=k, root=root)


def simulate(
    schedule: Schedule,
    machine,
    *,
    nbytes: int,
    noise=None,
    faults=None,
    timeline: bool = False,
    block_map=None,
    compiled: bool = True,
    engine: str = "auto",
    obs: Optional[Obs] = None,
    **legacy,
) -> SimResult:
    """Time ``schedule`` moving ``nbytes`` total on a simulated ``machine``.

    Keyword-only wrapper over :func:`repro.simnet.simulate`; ``timeline``
    requests per-message event collection, ``noise`` perturbs link costs,
    ``faults`` injects drops/crashes, and ``obs`` selects an
    observability scope (default: the process-global one — see
    :mod:`repro.obs`).  ``compiled=False`` disables the cost-identical
    compiled program feed (see :mod:`repro.compile`).

    ``machine`` is a :class:`~repro.simnet.machine.MachineSpec` or a
    registry name such as ``"dragonfly-1024"`` (see
    :func:`repro.simnet.machines.get`).  ``engine`` selects the
    simulation core — ``"auto"`` (default), ``"materialized"``, or
    ``"collapsed"`` (one representative per rank-equivalence class,
    sublinear in p; bit-identical, with recorded fallback on asymmetric
    runs — see :func:`repro.simnet.simulate.simulate`).

    The pre-facade ``collect_timeline=`` keyword still maps onto
    ``timeline=`` with one :class:`DeprecationWarning` per process.
    """
    if "collect_timeline" in legacy:
        _deprecated(
            "simulate(..., collect_timeline=...)",
            "simulate(..., timeline=...)",
        )
        timeline = legacy.pop("collect_timeline")
    if legacy:
        raise TypeError(
            f"simulate() got unexpected keyword argument(s) "
            f"{sorted(legacy)}"
        )
    return _simulate(
        schedule,
        _resolve_machine(machine),
        nbytes,
        noise=noise,
        faults=faults,
        collect_timeline=timeline,
        block_map=block_map,
        compiled=compiled,
        engine=engine,
        obs=obs,
    )


def execute(
    collective: str,
    algorithm: str,
    *,
    p: int,
    count: int,
    backend: str = "lockstep",
    k: Optional[int] = None,
    root: int = 0,
    op: ReduceOp = SUM,
    dtype: np.dtype = np.dtype(np.int64),
    seed: int = 0,
    check: bool = True,
    rtol: float = 0.0,
    atol: float = 0.0,
    timeout: float = 30.0,
    faults=None,
    recovery=None,
    adapt=None,
    adapt_policy=None,
    machine=None,
    select: Optional[str] = None,
    compiled: bool = True,
    obs: Optional[Obs] = None,
):
    """Build, run, and check a collective end to end on real data.

    Replaces the ``run_collective`` / ``run_collective_threaded`` split
    with one entry point: ``backend="lockstep"`` runs the deterministic
    matching engine in-process, ``backend="threaded"`` runs one real
    thread per rank over channels (``timeout`` and ``faults`` apply only
    there).  Inputs are seeded (``seed``) so runs are reproducible;
    ``check=True`` verifies every rank's output against the collective's
    reference semantics.  Returns a
    :class:`~repro.runtime.executor.CollectiveRun` with the schedule,
    inputs, final buffers, and expected outputs.

    ``recovery`` turns on self-healing: a mode string (``"abort"`` /
    ``"shrink"`` / ``"spare"``) or a
    :class:`~repro.recovery.RecoveryPolicy`.  Injected failures then
    trigger detect→shrink→rebuild→rerun rounds instead of raising, and
    the return value is a :class:`~repro.recovery.RecoveryRun` (same
    schedule/buffers/expected fields, plus the survivor mapping and the
    :class:`~repro.recovery.RecoveryReport`).

    ``adapt`` turns on online adaptive selection: a scenario name
    (``"flap"``, ``"migrate"``, ``"contention"``, ``"calm"``) or an
    :class:`~repro.adapt.AdaptScenario`.  The adaptive loop
    (:func:`repro.adapt.run_adaptive`) first runs against the simulated
    ``machine`` (a spec or registry name; default: Frontier-shaped,
    ``p`` nodes x 1 rank) under the scenario's drift, then the winning
    ``(algorithm, k)`` executes on the requested backend and the return
    value is an :class:`~repro.adapt.AdaptiveRun` (report + run).  The
    caller's ``algorithm``/``k`` are the fallback executed if the loop's
    ladder aborts — graceful degradation, never an exception.
    ``adapt_policy`` overrides the knobs
    (:class:`~repro.adapt.AdaptPolicy`).  With ``adapt=None`` (the
    default) none of this machinery runs: the path below is exactly the
    pre-adaptive one, bit for bit.

    ``select`` delegates the algorithm choice to a running tuning
    service (:mod:`repro.server`): pass its base URL
    (``select="http://127.0.0.1:8080"``) and the service's tuned
    ``(algorithm, k)`` for ``(collective, p, count × itemsize)``
    replaces the caller's ``algorithm``/``k`` before the normal path
    runs.  Mutually exclusive with ``adapt`` — one oracle per run.  The
    served choice is bit-identical to the in-process tuner's, so a run
    through ``select=`` matches a run tuned locally.

    ``compiled=True`` (the default) executes the schedule's compiled
    program tables (:mod:`repro.compile`) — bit-identical results, just
    faster; ``compiled=False`` forces op-by-op IR interpretation (the
    ``--no-compile`` escape hatch on the CLI).

    >>> import numpy as np, repro
    >>> run = repro.execute("allreduce", "recursive_multiplying",
    ...                     p=9, count=17, k=3)
    >>> bool(np.array_equal(run.buffers[0], run.expected[0]))
    True
    """
    if backend not in BACKENDS:
        raise ExecutionError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if select is not None:
        if adapt is not None:
            raise ExecutionError(
                "select= and adapt= are mutually exclusive: the tuning "
                "service and the adaptive loop are both choice oracles"
            )
        from .server.client import TuningClient

        choice = TuningClient(select).select(
            collective, p, count * np.dtype(dtype).itemsize
        )
        algorithm, k = choice.algorithm, choice.k
    if adapt is not None:
        from .adapt.loop import AdaptiveRun, run_adaptive
        from .adapt.scenarios import get_scenario
        from .adapt.selector import DEFAULT_POLICY
        from .selection.table import Choice
        from .simnet.machines import frontier

        scenario = (
            get_scenario(adapt, p) if isinstance(adapt, str) else adapt
        )
        mach = (
            _resolve_machine(machine)
            if machine is not None
            else frontier(nodes=p, ppn=1)
        )
        report = run_adaptive(
            collective,
            mach,
            count * np.dtype(dtype).itemsize,
            rounds=scenario.rounds,
            phased=scenario.phased,
            contention=scenario.contention,
            root=root,
            policy=adapt_policy if adapt_policy is not None else DEFAULT_POLICY,
            seed=seed,
        )
        choice = (
            Choice(algorithm, k) if report.aborted else report.final_choice
        )
        run = execute(
            collective,
            choice.algorithm,
            p=p,
            count=count,
            backend=backend,
            k=choice.k,
            root=root,
            op=op,
            dtype=dtype,
            seed=seed,
            check=check,
            rtol=rtol,
            atol=atol,
            timeout=timeout,
            faults=faults,
            recovery=recovery,
            compiled=compiled,
            obs=obs,
        )
        return AdaptiveRun(report=report, run=run, choice=choice)
    if machine is not None:
        raise ExecutionError(
            "machine applies only with adapt= (execution backends are "
            "machine-free; simulation machines live in repro.simulate)"
        )
    if recovery is not None:
        from .recovery import execute_with_recovery

        return execute_with_recovery(
            collective,
            algorithm,
            p=p,
            count=count,
            recovery=recovery,
            backend=backend,
            k=k,
            root=root,
            op=op,
            dtype=dtype,
            seed=seed,
            check=check,
            rtol=rtol,
            atol=atol,
            timeout=timeout,
            faults=faults,
            compiled=compiled,
        )
    if backend == "lockstep":
        if faults is not None:
            raise ExecutionError(
                "faults require backend='threaded' (the lockstep engine "
                "has no wire to lose messages on)"
            )
        if timeout != 30.0:
            raise ExecutionError(
                "timeout applies only to backend='threaded'"
            )
    schedule = build(collective, algorithm, p=p, k=k, root=root)
    rng = np.random.default_rng(seed)
    inputs = make_inputs(collective, p, count, dtype=dtype, root=root, rng=rng)
    buffers = initial_buffers(schedule, inputs, count, dtype=dtype)
    if backend == "lockstep":
        _execute_lockstep(schedule, buffers, op=op, compiled=compiled,
                          obs=obs)
    else:
        _execute_threaded(
            schedule, buffers, op=op, timeout=timeout, faults=faults,
            compiled=compiled,
        )
    expected = reference_result(collective, inputs, count, op=op, root=root)
    if check:
        check_outputs(schedule, buffers, expected, count, rtol=rtol, atol=atol)
    return CollectiveRun(
        schedule=schedule, inputs=inputs, buffers=buffers, expected=expected
    )


# ---------------------------------------------------------------------------
# Once-per-process deprecation shims.  The PR 3-era legacy entry points
# (build_schedule, run_collective, run_collective_threaded, positional
# simulate, schedule-first execute) are gone; this mechanism remains for
# the shims still in their warning window (collect_timeline= above).
# ---------------------------------------------------------------------------

_warned: set = set()


def _deprecated(old: str, new: str) -> None:
    if old in _warned:
        return
    _warned.add(old)
    warnings.warn(
        f"repro.{old} is deprecated; use repro.{new} instead",
        DeprecationWarning,
        stacklevel=3,
    )
