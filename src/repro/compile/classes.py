"""Rank-equivalence-class analysis over compiled program tables.

In symmetric topologies most ranks of a collective schedule execute
*isomorphic* programs: the same op kinds in the same step structure,
moving payloads of the same sizes over the same link classes, with peers
that differ only by a relabeling.  The paper's headline experiments run
at 1024 nodes and beyond, where simulating every rank individually is
the cost that keeps the acceptance grid small; grouping ranks into
equivalence classes and simulating one representative per class makes
the discrete-event cost track the *class count* instead of ``p``.

This module computes that partition from the compiled flat tables
(:mod:`repro.compile.program`) by classic partition refinement:

1. **Base signature** — everything about a rank's program that is
   invariant under peer relabeling: op kinds, raw step boundaries, the
   per-op payload shape ``(block count, large-block count)`` under the
   MPICH block partition (two ops carry equal byte counts for a given
   total iff these agree), the per-op link class on the target machine
   (intra / inter / group-crossing), and the per-op *matched counterpart
   op index* — the position, in the peer's program, of the send/recv
   this op pairs with under FIFO matching.
2. **Refinement** — re-split every class on the class labels of each
   op's peers, iterated to a fixpoint.  Including the counterpart op
   index in the base signature makes the fixpoint strong enough that,
   for every class ``A`` and send op ``j``, the op-``j`` peers of ``A``'s
   members form exactly one class ``B`` with ``|B| = |A|`` and a 1:1
   sender→receiver correspondence — the bijection the collapsed engine
   (:mod:`repro.simnet.collapsed`) needs to redirect one representative
   transfer per (class, op) pair.  :func:`classify` verifies this
   invariant explicitly and raises
   :class:`~repro.errors.ClassAnalysisError` if any schedule violates it.

The partition depends on the total byte count only through
``nbytes % nblocks`` (which blocks land in the one-byte-larger prefix of
the MPICH partition), so cached partitions are keyed by that residue,
the table fingerprint, and the machine's link profile — see
:func:`partition_key` and the persistent sidecar cache in
:mod:`repro.compile.cache`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ClassAnalysisError
from ..simnet.machine import MachineSpec
from .program import OP_COPY, OP_SEND, CompiledProgram, CompiledSchedule

__all__ = [
    "LINK_INTRA",
    "LINK_INTER",
    "LINK_GLOBAL",
    "RankClasses",
    "ClassProgram",
    "classify",
    "counterpart_ops",
    "link_profile",
    "partition_key",
    "machine_asymmetry",
]

#: Per-op link classes (values stored in :attr:`ClassProgram.link`).
LINK_INTRA = 0
LINK_INTER = 1
LINK_GLOBAL = 2


def machine_asymmetry(machine: MachineSpec) -> Optional[str]:
    """Why ``machine`` cannot host a class-collapsed simulation, or None.

    The collapsed engine simulates one representative rank per class with
    *private* port/compute resources, which is exact only when the real
    machine shares no resource between ranks: one rank per node (no
    shared intranode fabric) and no dragonfly global-channel pools
    (per-group egress/ingress are shared across the whole group).  A
    dragonfly *latency* layer without channel pools is fine — the
    ``alpha_global`` adder is per-message and captured by the per-op
    link class.
    """
    if machine.ppn != 1:
        return f"ppn={machine.ppn} shares intranode resources across ranks"
    df = machine.dragonfly
    if df is not None and df.global_channels is not None:
        return "dragonfly global channels are shared across ranks"
    return None


def link_profile(machine: MachineSpec) -> Tuple[int, int]:
    """The part of a machine that determines per-op link classes.

    With one rank per node (the only geometry the collapsed engine
    accepts — see :func:`machine_asymmetry`), a rank's node is the rank
    itself under either placement, so link classes depend only on the
    node count and the dragonfly group size (0 when no dragonfly layer).
    Used as a partition cache-key component.
    """
    df = machine.dragonfly
    return (machine.nodes, df.nodes_per_group if df is not None else 0)


def partition_key(
    compiled: CompiledSchedule, machine: MachineSpec, nbytes: int
) -> Tuple[str, Tuple[int, int], int]:
    """Cache key under which a schedule's partition is stable.

    The partition reads the compiled tables, the machine's link profile,
    and the *shape* of the byte partition — which depends on ``nbytes``
    only through ``nbytes % nblocks`` (the count of one-byte-larger
    blocks in the MPICH partition).  Two simulations differing only in
    total bytes with the same residue share a partition.
    """
    return (
        compiled.fingerprint(),
        link_profile(machine),
        nbytes % compiled.nblocks,
    )


@dataclass
class ClassProgram:
    """One equivalence class: its representative's op tables plus the
    per-send redirection targets the collapsed engine consumes.

    ``feed`` mirrors :meth:`~repro.compile.program.CompiledSchedule.sim_feed`
    for the representative — per raw step, ``(is_send, op_index)`` with
    copies stripped.  ``send_target[j]`` is ``(class, op_index)`` of the
    matched receive for send op ``j`` (and ``None`` for non-sends).
    """

    rep: int
    size: int
    kinds: np.ndarray      # int8 per op
    nblk: np.ndarray       # int32 per op: blocks in the payload
    nlarge: np.ndarray     # int32 per op: payload blocks in the +1 prefix
    link: np.ndarray       # int8 per op: LINK_INTRA/INTER/GLOBAL
    feed: Tuple[Tuple[Tuple[bool, int], ...], ...]
    send_target: Tuple[Optional[Tuple[int, int]], ...]

    @property
    def nops(self) -> int:
        """Op count of the representative's program."""
        return len(self.kinds)

    def op_bytes(self, total: int, nblocks: int) -> np.ndarray:
        """Per-op payload bytes under ``BlockMap(total, nblocks)``.

        A payload of ``nblk`` blocks, ``nlarge`` of them in the MPICH
        partition's one-unit-larger prefix, carries exactly
        ``nblk·(total // nblocks) + nlarge`` units.
        """
        base = total // nblocks
        return self.nblk.astype(np.int64) * base + self.nlarge


@dataclass
class RankClasses:
    """The rank partition of one compiled schedule on one machine.

    ``labels[r]`` is the dense class id of rank ``r``; class ids are
    ordered by representative (lowest member) rank, so ``labels[0] == 0``.
    """

    nranks: int
    nblocks: int
    residue: int           # nbytes % nblocks the partition was built for
    labels: np.ndarray     # int32 [nranks]
    classes: Tuple[ClassProgram, ...]

    @property
    def nclasses(self) -> int:
        """Number of equivalence classes."""
        return len(self.classes)

    @property
    def reps(self) -> Tuple[int, ...]:
        """Representative (lowest) rank of each class, in class order."""
        return tuple(c.rep for c in self.classes)

    def fingerprint(self) -> str:
        """Stable content hash of the partition and redirection tables."""
        h = hashlib.sha256()
        h.update(f"{self.nranks}|{self.nblocks}|{self.residue}".encode())
        h.update(np.ascontiguousarray(self.labels, dtype="<i4").tobytes())
        for c in self.classes:
            h.update(f"|C{c.rep},{c.size}".encode())
            h.update(np.ascontiguousarray(c.kinds, dtype="<i1").tobytes())
            for arr in (c.nblk, c.nlarge):
                h.update(np.ascontiguousarray(arr, dtype="<i4").tobytes())
            h.update(np.ascontiguousarray(c.link, dtype="<i1").tobytes())
            h.update(
                ("|T" + ";".join(
                    "-" if t is None else f"{t[0]},{t[1]}"
                    for t in c.send_target
                )).encode()
            )
        return h.hexdigest()

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"{self.nclasses} class(es) over {self.nranks} rank(s), "
            f"largest {int(max(c.size for c in self.classes))}"
        )


def counterpart_ops(programs: Tuple[CompiledProgram, ...]) -> List[np.ndarray]:
    """Per rank, per op: the matched op's index in the peer's program.

    FIFO matching per (src, dst) channel, mirroring
    :func:`repro.faults.sim.match_messages`: the i-th send on a channel
    pairs with the i-th receive on it.  Copies get ``-1``.  Raises
    :class:`~repro.errors.ClassAnalysisError` on unmatched traffic
    (impossible for validated schedules; checked defensively because the
    collapsed engine trusts this map).
    """
    sends: Dict[Tuple[int, int], List[int]] = {}
    recvs: Dict[Tuple[int, int], List[int]] = {}
    for prog in programs:
        r = prog.rank
        kinds = prog.kinds.tolist()
        peers = prog.peers.tolist()
        for j, kind in enumerate(kinds):
            if kind == OP_COPY:
                continue
            if kind == OP_SEND:
                sends.setdefault((r, peers[j]), []).append(j)
            else:
                recvs.setdefault((peers[j], r), []).append(j)
    out = [np.full(prog.nops, -1, dtype=np.int32) for prog in programs]
    for chan, send_ops in sends.items():
        recv_ops = recvs.get(chan, [])
        if len(recv_ops) != len(send_ops):
            raise ClassAnalysisError(
                f"channel {chan}: {len(send_ops)} send(s) vs "
                f"{len(recv_ops)} receive(s)"
            )
        src, dst = chan
        for sj, rj in zip(send_ops, recv_ops):
            out[src][sj] = rj
            out[dst][rj] = sj
    for chan in recvs:
        if chan not in sends:
            raise ClassAnalysisError(f"channel {chan}: receive with no send")
    return out


def _payload_shape(prog: CompiledProgram, extra: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-op ``(block count, large-block count)`` under residue ``extra``."""
    bounds = prog.seg_bounds
    nblk = (bounds[1:] - bounds[:-1]).astype(np.int32)
    if prog.nops == 0:
        return nblk, np.zeros(0, dtype=np.int32)
    large = (prog.seg_blocks < extra).astype(np.int32)
    nlarge = np.add.reduceat(large, bounds[:-1].astype(np.intp)).astype(np.int32)
    return nblk, nlarge


def _link_classes(
    prog: CompiledProgram, nodes_per_group: int
) -> np.ndarray:
    """Per-op link class for a 1-rank-per-node machine (rank == node).

    Self-communication is forbidden by the IR, so every non-copy op is
    internode; it is group-crossing when the dragonfly group of the rank
    and the peer differ.  Copies get ``-1``.
    """
    link = np.full(prog.nops, LINK_INTER, dtype=np.int8)
    if nodes_per_group:
        crossing = (prog.peers // nodes_per_group) != (prog.rank // nodes_per_group)
        link[crossing] = LINK_GLOBAL
    link[prog.kinds == OP_COPY] = -1
    return link


def _feed_of(prog: CompiledProgram) -> Tuple[Tuple[Tuple[bool, int], ...], ...]:
    """Per raw step ``(is_send, op_index)`` with copies stripped."""
    kinds = prog.kinds.tolist()
    bounds = prog.steps_raw.tolist()
    feed = []
    for s in range(len(bounds) - 1):
        ops = []
        for i in range(bounds[s], bounds[s + 1]):
            kind = kinds[i]
            if kind == OP_COPY:
                continue
            ops.append((kind == OP_SEND, i))
        feed.append(tuple(ops))
    return tuple(feed)


def classify(
    compiled: CompiledSchedule, machine: MachineSpec, nbytes: int
) -> RankClasses:
    """Partition the schedule's ranks into timing-equivalence classes.

    See the module docstring for the algorithm.  The machine must pass
    :func:`machine_asymmetry` (one rank per node, no shared global
    channel pools); violations raise
    :class:`~repro.errors.ClassAnalysisError`, as does any schedule whose
    computed partition breaks the class↔class bijection invariant.

    >>> from repro.compile import compile_schedule
    >>> from repro.core.registry import build_schedule
    >>> from repro.simnet.machines import reference
    >>> c = classify(compile_schedule(build_schedule("allgather", "ring", 8)),
    ...              reference(8), 1024)
    >>> c.nclasses, c.labels.tolist()
    (1, [0, 0, 0, 0, 0, 0, 0, 0])
    """
    reason = machine_asymmetry(machine)
    if reason is not None:
        raise ClassAnalysisError(f"{machine.name}: {reason}")
    if machine.nranks != compiled.nranks:
        raise ClassAnalysisError(
            f"{machine.name} hosts {machine.nranks} ranks but the "
            f"schedule needs {compiled.nranks}"
        )
    p = compiled.nranks
    programs = compiled.programs
    extra = nbytes % compiled.nblocks
    _, npg = link_profile(machine)
    cops = counterpart_ops(programs)

    shapes = [_payload_shape(prog, extra) for prog in programs]
    links = [_link_classes(prog, npg) for prog in programs]

    # Base signature: relabeling-invariant program content.
    base_keys = []
    for r, prog in enumerate(programs):
        nblk, nlarge = shapes[r]
        base_keys.append((
            prog.kinds.tobytes(),
            prog.steps_raw.tobytes(),
            nblk.tobytes(),
            nlarge.tobytes(),
            links[r].tobytes(),
            cops[r].tobytes(),
        ))
    labels = _dense_labels(base_keys)

    # Refinement: split on peer class labels until stable.  Copies carry
    # peer -1; map them to a fixed sentinel label outside the class space.
    peer_idx = [prog.peers.astype(np.intp) for prog in programs]
    copy_mask = [prog.peers < 0 for prog in programs]
    for _ in range(p):
        keys = []
        for r in range(p):
            peer_labels = labels[np.where(copy_mask[r], 0, peer_idx[r])]
            peer_labels = np.where(copy_mask[r], -1, peer_labels)
            keys.append((int(labels[r]), peer_labels.tobytes()))
        new_labels = _dense_labels(keys)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels

    # Assemble per-class programs and verify the bijection invariant.
    nclasses = int(labels.max()) + 1 if p else 0
    counts = np.bincount(labels, minlength=nclasses)
    classes: List[ClassProgram] = []
    members_of = [np.where(labels == c)[0] for c in range(nclasses)]
    for c in range(nclasses):
        members = members_of[c]
        rep = int(members[0])
        prog = programs[rep]
        nblk, nlarge = shapes[rep]
        kinds = prog.kinds
        send_target: List[Optional[Tuple[int, int]]] = [None] * prog.nops
        if len(members) > 1:
            member_peers = np.stack([programs[int(m)].peers for m in members])
        else:
            member_peers = prog.peers[None, :]
        for j in range(prog.nops):
            if kinds[j] != OP_SEND:
                continue
            targets = member_peers[:, j]
            target_labels = labels[targets]
            tc = int(target_labels[0])
            if not np.all(target_labels == tc):
                raise ClassAnalysisError(
                    f"class {c} op {j}: peers span multiple classes"
                )
            if len(np.unique(targets)) != len(members) or counts[tc] != len(members):
                raise ClassAnalysisError(
                    f"class {c} op {j}: sends to class {tc} are not 1:1 "
                    f"({len(members)} sender(s), {int(counts[tc])} receiver(s))"
                )
            send_target[j] = (tc, int(cops[rep][j]))
        classes.append(ClassProgram(
            rep=rep,
            size=int(counts[c]),
            kinds=kinds,
            nblk=nblk,
            nlarge=nlarge,
            link=links[rep],
            feed=_feed_of(prog),
            send_target=tuple(send_target),
        ))
    return RankClasses(
        nranks=p,
        nblocks=compiled.nblocks,
        residue=extra,
        labels=labels,
        classes=tuple(classes),
    )


def _dense_labels(keys: List) -> np.ndarray:
    """Dense class ids in order of first occurrence (rep = lowest rank)."""
    table: Dict = {}
    labels = np.empty(len(keys), dtype=np.int32)
    for r, key in enumerate(keys):
        labels[r] = table.setdefault(key, len(table))
    return labels
