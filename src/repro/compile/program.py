"""Flat per-rank program tables: the compiled form of a schedule.

A :class:`~repro.core.schedule.Schedule` is a tree of frozen dataclasses
that every executor pass re-interprets op by op (``isinstance`` dispatch,
per-block ``range_of`` arithmetic, per-payload allocation).  Lowering
(:mod:`repro.compile.lower`) flattens each rank's program into contiguous
NumPy tables — one row per op, in program order — so the hot loops walk
preresolved integers instead of the IR:

==============  =====  =====================================================
table           dtype  contents (one entry per op, flat program order)
==============  =====  =====================================================
``kinds``       int8   op code: 0 send · 1 recv · 2 reduce-recv · 3 copy
``peers``       int32  peer rank (−1 for copies)
``tags``        int32  per-(src, dst) FIFO sequence number (−1 for copies)
``seg_bounds``  int32  ``[nops+1]`` — op *i* owns segment span
                       ``seg_blocks[seg_bounds[i]:seg_bounds[i+1]]``
``seg_blocks``  int32  block ids; a copy stores exactly ``[src, dst]``
``steps_raw``   int32  ``[nsteps+1]`` — the schedule's step boundaries
``steps_fused`` int32  boundaries after legal copy-step fusion
                       (:mod:`repro.compile.fuse`); a subsequence of
                       ``steps_raw``
==============  =====  =====================================================

The tables are the cached, fingerprinted, disk-persisted artifact.
*Binding* resolves them against a concrete
:class:`~repro.core.blocks.BlockMap` into per-step action tuples of plain
Python ints (slice starts/stops, payload sizes) — adjacent blocks merge
into single slices — which is what the executors' tight loops consume.
"""

from __future__ import annotations

import hashlib
import queue
import threading
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError

__all__ = [
    "OP_SEND",
    "OP_RECV",
    "OP_REDUCE_RECV",
    "OP_COPY",
    "OP_NAMES",
    "CompiledProgram",
    "CompiledSchedule",
    "BoundSchedule",
    "StagingPlan",
    "StagingPool",
]

#: Op codes used in :attr:`CompiledProgram.kinds`.
OP_SEND = 0
OP_RECV = 1
OP_REDUCE_RECV = 2
OP_COPY = 3

#: Human names for op codes, used in self-verification diagnostics.
OP_NAMES = {OP_SEND: "send", OP_RECV: "recv",
            OP_REDUCE_RECV: "reduce-recv", OP_COPY: "copy"}

#: Cap on per-schedule bind-cache entries (distinct block geometries).
_BIND_CACHE_MAX = 8


@dataclass
class CompiledProgram:
    """One rank's flat op tables (see the module docstring for layout)."""

    rank: int
    kinds: np.ndarray
    peers: np.ndarray
    tags: np.ndarray
    seg_bounds: np.ndarray
    seg_blocks: np.ndarray
    steps_raw: np.ndarray
    steps_fused: np.ndarray

    @property
    def nops(self) -> int:
        """Number of ops in this rank's program."""
        return len(self.kinds)

    @property
    def nsteps(self) -> int:
        """Number of (raw, pre-fusion) steps in this rank's program."""
        return len(self.steps_raw) - 1

    def table_bytes(self) -> bytes:
        """Canonical little-endian byte serialization of every table.

        The content the schedule-level fingerprint hashes; platform
        independent so golden fingerprints are portable.
        """
        parts = [np.ascontiguousarray(self.kinds, dtype="<i1").tobytes()]
        for arr in (self.peers, self.tags, self.seg_bounds,
                    self.seg_blocks, self.steps_raw, self.steps_fused):
            parts.append(np.ascontiguousarray(arr, dtype="<i4").tobytes())
        return b"|".join(parts)


@dataclass(frozen=True)
class StagingPlan:
    """The pooled, reusable staging-buffer plan for one compiled schedule.

    ``signatures`` is the sorted set of distinct send-payload block
    tuples across every rank.  Under any block map, two sends with the
    same signature need byte-identical staging buffers, so the runtime
    :class:`StagingPool` pre-registers exactly one free-list per distinct
    bound payload size and recycles buffers across sends instead of
    allocating per message.
    """

    signatures: Tuple[Tuple[int, ...], ...]

    def describe(self) -> str:
        """One-line summary used in reports."""
        return f"{len(self.signatures)} distinct payload signature(s)"


class StagingPool:
    """Free-lists of reusable NumPy staging buffers, keyed by size.

    Thread-safe (each free-list is a :class:`queue.SimpleQueue`; the
    size→queue dict is frozen at construction so worker threads only
    read it).  Recycling is only legal on the fault-free path: a
    :class:`~repro.faults.channel.LossyChannel` duplicate enqueues the
    *same* payload object twice, so under a fault plan payloads must
    stay immortal and the executors bypass the pool.
    """

    def __init__(self, sizes: Sequence[int], dtype: np.dtype) -> None:
        self._pools: Dict[int, "queue.SimpleQueue"] = {
            int(s): queue.SimpleQueue() for s in set(sizes)
        }
        self.dtype = dtype
        self.allocations = 0

    def acquire(self, size: int) -> np.ndarray:
        """A buffer of exactly ``size`` elements (recycled when possible)."""
        q = self._pools.get(size)
        if q is not None:
            try:
                return q.get_nowait()
            except queue.Empty:
                pass
        self.allocations += 1
        return np.empty(size, dtype=self.dtype)

    def release(self, buf: np.ndarray) -> None:
        """Return a fully-consumed buffer to its free-list."""
        q = self._pools.get(buf.size)
        if q is not None:
            q.put(buf)


@dataclass
class BoundSchedule:
    """Tables resolved against one block geometry: executable step tuples.

    Per rank and per step the executors consume three flat tuples of
    plain-Python ints (no NumPy scalars, no IR objects):

    * sends — ``(peer, ranges, total)``
    * copies — ``(src_start, src_stop, dst_start, dst_stop)``
    * recvs — ``(peer, reduce, ranges, total, blocks, mismatch)``

    where ``ranges`` is a tuple of ``(start, stop)`` buffer slices with
    adjacent blocks merged, ``blocks`` keeps the original block ids for
    diagnostics, and ``mismatch`` is the statically-precomputed FIFO
    blocks disagreement the lockstep runner reports exactly like the
    interpreter would (or ``None``).  ``steps`` uses the fused
    boundaries, ``raw_steps`` the schedule's original ones (the fault
    path needs original step indexing for crash/heartbeat semantics).
    """

    describe_str: str
    nranks: int
    steps: List[List[Tuple[tuple, tuple, tuple]]]
    raw_steps: List[List[Tuple[tuple, tuple, tuple]]]
    needs: List[List[Tuple[Tuple[int, int], ...]]]
    sizes: Tuple[int, ...]
    #: Per rank, per fused step: the count of *raw* steps completed once
    #: that fused step finishes — so executors on the fused path can
    #: report progress in the schedule's own step numbering.
    fused_raw: List[Tuple[int, ...]]

    def staging_pool(self, dtype: np.dtype) -> StagingPool:
        """A fresh :class:`StagingPool` covering every send size."""
        return StagingPool(self.sizes, dtype)


def _merge_ranges(
    block_ids: Sequence[int],
    starts: Sequence[int],
    stops: Sequence[int],
) -> Tuple[Tuple[Tuple[int, int], ...], int]:
    """Collapse a block-id sequence into merged (start, stop) slices.

    Blocks are gathered in tuple order; adjacent buffer ranges merge into
    one slice (pure concatenation — bit-identical to per-block copies).
    Returns ``(ranges, total_elements)``.
    """
    ranges: List[Tuple[int, int]] = []
    total = 0
    for b in block_ids:
        a, z = starts[b], stops[b]
        total += z - a
        if ranges and ranges[-1][1] == a:
            ranges[-1] = (ranges[-1][0], z)
        else:
            ranges.append((a, z))
    return tuple(ranges), total


@dataclass
class CompiledSchedule:
    """A schedule lowered to flat per-rank tables plus a staging plan.

    Produced by :func:`repro.compile.compile_schedule`; content-addressed
    by the source schedule's
    :meth:`~repro.core.schedule.Schedule.fingerprint` in the compiled
    cache, and carrying its own :meth:`fingerprint` over the lowered
    tables (pinned by the golden compiled-program test).
    """

    collective: str
    algorithm: str
    nranks: int
    nblocks: int
    root: Optional[int]
    k: Optional[int]
    source_fingerprint: str
    programs: Tuple[CompiledProgram, ...]
    staging_plan: StagingPlan
    #: (rank, flat op index) → (in-flight message blocks, recv op blocks)
    #: for receives whose FIFO-matched message carries different blocks —
    #: precomputed so the compiled lockstep runner raises exactly where
    #: the interpreter would.
    fifo_mismatches: Dict[Tuple[int, int], Tuple[Tuple[int, ...], Tuple[int, ...]]] = field(
        default_factory=dict
    )
    _bind_cache: Dict[tuple, BoundSchedule] = field(
        default_factory=dict, repr=False, compare=False
    )
    _sim_feed: Optional[list] = field(default=None, repr=False, compare=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __getstate__(self):
        """Pickle only the content (drop runtime caches and the lock)."""
        state = self.__dict__.copy()
        state["_bind_cache"] = {}
        state["_sim_feed"] = None
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        """Restore content and recreate the runtime-only fields."""
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def describe(self) -> str:
        """One-line human description (matches the source schedule's)."""
        bits = [self.collective, self.algorithm, f"p={self.nranks}"]
        if self.k is not None:
            bits.append(f"k={self.k}")
        if self.root is not None:
            bits.append(f"root={self.root}")
        return " ".join(bits)

    def total_ops(self) -> int:
        """Total op count across every rank's tables."""
        return sum(prog.nops for prog in self.programs)

    def fingerprint(self) -> str:
        """Stable content hash over the lowered tables and staging plan.

        Distinct from :attr:`source_fingerprint` (the IR hash): this pins
        the *lowering* — a change to table layout, fusion decisions, or
        the staging plan moves it even when the source IR is unchanged.
        The 8-rank k-nomial golden in ``tests/golden`` watches it.
        """
        h = hashlib.sha256()
        h.update(
            f"{self.collective}|{self.algorithm}|{self.nranks}|"
            f"{self.nblocks}|{self.root}|{self.k}|"
            f"{self.source_fingerprint}".encode()
        )
        for prog in self.programs:
            h.update(b"|P")
            h.update(prog.table_bytes())
        for sig in self.staging_plan.signatures:
            h.update(("|G" + ",".join(map(str, sig))).encode())
        return h.hexdigest()

    def verify(self, schedule) -> None:
        """Run the self-verification pass against the source schedule.

        Delegates to :func:`repro.compile.verify.verify_compiled`; raises
        :class:`~repro.errors.CompileError` with rank/step-naming
        diagnostics on any table corruption.
        """
        from .verify import verify_compiled

        verify_compiled(self, schedule)

    # ------------------------------------------------------------------
    # Binding: tables × block geometry → executable action tuples
    # ------------------------------------------------------------------

    def bind(self, block_map) -> BoundSchedule:
        """Resolve the tables against ``block_map`` (cached per geometry)."""
        nb = self.nblocks
        if block_map.nblocks != nb:
            raise ExecutionError(
                f"block map has {block_map.nblocks} blocks but the "
                f"compiled schedule uses {nb}"
            )
        stops = tuple(block_map.range_of(b)[1] for b in range(nb))
        key = (block_map.total, stops)
        with self._lock:
            bound = self._bind_cache.get(key)
        if bound is not None:
            return bound
        bound = self._bind(block_map, stops)
        with self._lock:
            if len(self._bind_cache) >= _BIND_CACHE_MAX:
                self._bind_cache.pop(next(iter(self._bind_cache)))
            self._bind_cache[key] = bound
        return bound

    def _bind(self, block_map, stops: Tuple[int, ...]) -> BoundSchedule:
        starts = tuple(block_map.range_of(b)[0] for b in range(self.nblocks))
        fused_steps: List[List[Tuple[tuple, tuple, tuple]]] = []
        raw_steps: List[List[Tuple[tuple, tuple, tuple]]] = []
        needs: List[List[Tuple[Tuple[int, int], ...]]] = []
        fused_raw: List[Tuple[int, ...]] = []
        sizes = set()
        for prog in self.programs:
            kinds = prog.kinds.tolist()
            peers = prog.peers.tolist()
            seg_bounds = prog.seg_bounds.tolist()
            seg_blocks = prog.seg_blocks.tolist()
            mismatches = self.fifo_mismatches

            def bind_span(lo: int, hi: int, rank: int):
                sends: List[tuple] = []
                copies: List[tuple] = []
                recvs: List[tuple] = []
                for i in range(lo, hi):
                    kind = kinds[i]
                    blocks = seg_blocks[seg_bounds[i]:seg_bounds[i + 1]]
                    if kind == OP_COPY:
                        src, dst = blocks
                        s0, s1 = starts[src], stops[src]
                        d0, d1 = starts[dst], stops[dst]
                        if s1 - s0 != d1 - d0:
                            raise ExecutionError(
                                f"rank {rank}: copy between blocks of "
                                f"different sizes ({src}→{dst})"
                            )
                        copies.append((s0, s1, d0, d1))
                        continue
                    ranges, total = _merge_ranges(blocks, starts, stops)
                    if kind == OP_SEND:
                        sends.append((peers[i], ranges, total))
                        sizes.add(total)
                    else:
                        recvs.append((
                            peers[i],
                            kind == OP_REDUCE_RECV,
                            ranges,
                            total,
                            tuple(blocks),
                            mismatches.get((rank, i)),
                        ))
                return tuple(sends), tuple(copies), tuple(recvs)

            rank = prog.rank
            raw_bounds = prog.steps_raw.tolist()
            raw = [
                bind_span(raw_bounds[s], raw_bounds[s + 1], rank)
                for s in range(len(raw_bounds) - 1)
            ]
            fused_bounds = prog.steps_fused.tolist()
            fused = [
                bind_span(fused_bounds[s], fused_bounds[s + 1], rank)
                for s in range(len(fused_bounds) - 1)
            ]
            step_needs = []
            for _, _, recvs in fused:
                per_peer: Dict[int, int] = {}
                for entry in recvs:
                    per_peer[entry[0]] = per_peer.get(entry[0], 0) + 1
                step_needs.append(tuple(per_peer.items()))
            raw_steps.append(raw)
            fused_steps.append(fused)
            needs.append(step_needs)
            fused_raw.append(tuple(
                bisect_right(raw_bounds, fused_bounds[j + 1]) - 1
                for j in range(len(fused_bounds) - 1)
            ))
        return BoundSchedule(
            describe_str=self.describe(),
            nranks=self.nranks,
            steps=fused_steps,
            raw_steps=raw_steps,
            needs=needs,
            sizes=tuple(sorted(sizes)),
            fused_raw=fused_raw,
        )

    # ------------------------------------------------------------------
    # Simulator feed
    # ------------------------------------------------------------------

    def sim_feed(self) -> list:
        """Per-rank, per-raw-step ``(is_send, peer)`` tuples for the DES.

        Copies are omitted — the simulator models them as free, so the
        cost walk is identical to interpreting the IR.  Cached; plain
        Python ints so the simulator's generator loop stays allocation-
        free.
        """
        feed = self._sim_feed
        if feed is None:
            feed = []
            for prog in self.programs:
                kinds = prog.kinds.tolist()
                peers = prog.peers.tolist()
                bounds = prog.steps_raw.tolist()
                rank_feed = []
                for s in range(len(bounds) - 1):
                    ops = []
                    for i in range(bounds[s], bounds[s + 1]):
                        kind = kinds[i]
                        if kind == OP_SEND:
                            ops.append((True, peers[i]))
                        elif kind != OP_COPY:
                            ops.append((False, peers[i]))
                    rank_feed.append(tuple(ops))
                feed.append(rank_feed)
            self._sim_feed = feed
        return feed
