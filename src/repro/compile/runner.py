"""Tight-loop lockstep execution of bound compiled programs.

The compiled counterpart of :func:`repro.core.runner.run_schedule`: the
same cooperative progress loop and FIFO channel matching, but walking
:class:`~repro.compile.program.BoundSchedule` action tuples (preresolved
slices, merged ranges, precomputed per-step receive needs) instead of
interpreting the IR per pass.  Fused step boundaries are used — legal
fusion is execution-transparent (see :mod:`repro.compile.fuse`), and the
differential suite pins the final buffers bit-identical to the
interpreter's.

Error behavior matches the interpreter's contract: deadlock raises
:class:`~repro.errors.ExecutionError` naming the blocked ranks, leftover
messages raise, and a FIFO-matched message whose blocks disagree with
the receive op raises the interpreter's diagnosis (precomputed at
lowering time, reported when the message would be consumed).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

import numpy as np

from ..errors import ExecutionError
from .program import BoundSchedule

__all__ = ["run_compiled_lockstep"]


def _gather(buf: np.ndarray, ranges: tuple, total: int) -> np.ndarray:
    """Snapshot the named ranges into a fresh payload array."""
    if len(ranges) == 1:
        a, b = ranges[0]
        return buf[a:b].copy()
    out = np.empty(total, dtype=buf.dtype)
    pos = 0
    for a, b in ranges:
        n = b - a
        out[pos:pos + n] = buf[a:b]
        pos += n
    return out


def _apply_recv(
    buf: np.ndarray,
    payload: np.ndarray,
    ranges: tuple,
    total: int,
    reduce: bool,
    op,
    rank: int,
    blocks: tuple,
) -> None:
    """Scatter (or reduce) a payload into the named ranges."""
    if payload.size != total:
        raise ExecutionError(
            f"rank {rank}: payload of {payload.size} elements does not "
            f"match blocks {blocks} totalling {total}"
        )
    pos = 0
    for a, b in ranges:
        n = b - a
        chunk = payload[pos:pos + n]
        if reduce:
            op.apply(buf[a:b], chunk)
        else:
            buf[a:b] = chunk
        pos += n


def run_compiled_lockstep(
    bound: BoundSchedule,
    buffers: List[np.ndarray],
    op,
) -> int:
    """Run a bound schedule over ``buffers`` in place (lockstep).

    Returns the number of elements moved through messages (the
    interpreter's ``bytes_moved`` accounting), for the executor's
    observability counters.  Raises :class:`~repro.errors.ExecutionError`
    on deadlock, FIFO block mismatch, payload size mismatch, or leftover
    messages — the same failure surface as the interpreted runner.
    """
    p = bound.nranks
    steps = bound.steps
    needs = bound.needs
    desc = bound.describe_str
    channels: Dict[Tuple[int, int], Deque[np.ndarray]] = {}
    pc = [0] * p
    posted = [False] * p
    moved = 0
    unfinished = sum(1 for r in range(p) if steps[r])
    while unfinished:
        changed = False
        for rank in range(p):
            rank_steps = steps[rank]
            i = pc[rank]
            if i >= len(rank_steps):
                continue
            sends, copies, recvs = rank_steps[i]
            buf = buffers[rank]
            if not posted[rank]:
                for peer, ranges, total in sends:
                    ch = channels.get((rank, peer))
                    if ch is None:
                        ch = channels[(rank, peer)] = deque()
                    ch.append(_gather(buf, ranges, total))
                    moved += total
                for s0, s1, d0, d1 in copies:
                    buf[d0:d1] = buf[s0:s1]
                posted[rank] = True
                changed = True
            ready = all(
                len(channels.get((peer, rank), ())) >= cnt
                for peer, cnt in needs[rank][i]
            )
            if not ready:
                continue
            for peer, reduce, ranges, total, blocks, mismatch in recvs:
                payload = channels[(peer, rank)].popleft()
                if mismatch is not None:
                    raise ExecutionError(
                        f"{desc}: rank {rank} step {i} expected blocks "
                        f"{mismatch[1]} from rank {peer} but the "
                        f"in-flight message carries {mismatch[0]}"
                    )
                _apply_recv(
                    buf, payload, ranges, total, reduce, op, rank, blocks
                )
            pc[rank] += 1
            posted[rank] = False
            changed = True
            if pc[rank] >= len(rank_steps):
                unfinished -= 1
        if not changed and unfinished:
            lines = []
            for rank in range(p):
                if pc[rank] >= len(steps[rank]):
                    continue
                waits = [
                    f"recv{list(blocks)}<-{peer}"
                    f"(have {len(channels.get((peer, rank), ()))})"
                    for peer, _, _, _, blocks, _ in steps[rank][pc[rank]][2]
                ]
                lines.append(
                    f"  rank {rank} at step {pc[rank]}: waiting on {waits}"
                )
                if len(lines) >= 16:
                    lines.append("  ... (truncated)")
                    break
            raise ExecutionError(
                f"{desc}: deadlock — no rank can make progress (compiled)."
                + "\n" + "\n".join(lines)
            )
    leftovers = {k: len(v) for k, v in channels.items() if v}
    if leftovers:
        raise ExecutionError(
            f"{desc}: {sum(leftovers.values())} message(s) were sent but "
            f"never received: {leftovers}"
        )
    return moved
