"""Self-verification of compiled programs against their source IR.

The verification ladder (every rung raises
:class:`~repro.errors.CompileError` with diagnostics naming the rank,
step, and op involved — a corrupted artifact must be caught here, never
execute silently wrong):

1. **identity** — the artifact's parameters and recorded source
   fingerprint must match the schedule it claims to compile;
2. **structure** — table lengths agree, boundary arrays are monotone and
   cover the op/segment ranges, op codes are known, peers and block ids
   are in range;
3. **recompute** — every table row (op code, peer, FIFO tag, segment
   block ids) is re-derived from the IR and compared exactly;
4. **fusion** — the fused step boundaries must equal the ones
   :func:`repro.compile.fuse.fused_groups` independently derives, so an
   illegally dropped (or invented) fusion barrier is detected;
5. **plan** — the staging plan's payload signatures match the IR's send
   set.

A fifth, out-of-band rung lives in :mod:`repro.compile.cache`: artifacts
loaded from disk re-run this whole ladder and quarantine on failure (the
``semantic`` rung of the store's integrity ladder).

The mutation corpus (``tests/test_compile_mutations.py``) holds this
pass to its promise with hand-broken tables: stale peers, off-by-one
block offsets, dropped fusion barriers, wrong op codes, corrupted tags.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

from ..core.schedule import CopyOp, RecvOp, Schedule, SendOp
from ..errors import CompileError
from .fuse import fused_groups
from .program import (
    OP_COPY,
    OP_NAMES,
    OP_RECV,
    OP_REDUCE_RECV,
    OP_SEND,
    CompiledSchedule,
    StagingPlan,
)

__all__ = ["verify_compiled"]


def _step_of(bounds: Sequence[int], op_index: int) -> int:
    """Raw step index owning flat op ``op_index`` (for diagnostics)."""
    return max(0, bisect_right(bounds, op_index) - 1)


def _fail(rank: int, step: int, detail: str) -> None:
    raise CompileError(
        f"compiled program corrupt at rank {rank} step {step}: {detail}"
    )


def verify_compiled(compiled: CompiledSchedule, schedule: Schedule) -> None:
    """Check ``compiled`` is a faithful lowering of ``schedule``.

    Raises :class:`~repro.errors.CompileError` naming the offending rank
    and step on the first violation; returns ``None`` when every table
    matches the recomputed expectation exactly.
    """
    # Rung 1: identity.
    for field_name in ("collective", "algorithm", "nranks", "nblocks",
                       "root", "k"):
        got = getattr(compiled, field_name)
        want = getattr(schedule, field_name)
        if got != want:
            raise CompileError(
                f"compiled artifact {field_name}={got!r} does not match "
                f"schedule {field_name}={want!r}"
            )
    if compiled.source_fingerprint != schedule.fingerprint():
        raise CompileError(
            f"compiled artifact was lowered from a different schedule: "
            f"source fingerprint {compiled.source_fingerprint[:16]}… != "
            f"{schedule.fingerprint()[:16]}…"
        )
    if len(compiled.programs) != schedule.nranks:
        raise CompileError(
            f"compiled artifact has {len(compiled.programs)} rank "
            f"program(s), schedule has {schedule.nranks}"
        )

    send_seq = {}
    recv_seq = {}
    signatures = set()
    for prog, src_prog in zip(compiled.programs, schedule.programs):
        rank = src_prog.rank
        flat_ops = [op for _, op in src_prog.iter_ops()]
        nops = len(flat_ops)

        # Recompute the expected raw boundaries first: structural
        # diagnostics below locate ops through them, so they must be
        # trustworthy even when the artifact's own tables are not.
        exp_raw = [0]
        for step in src_prog.steps:
            exp_raw.append(exp_raw[-1] + len(step.ops))

        # Rung 2: structure.
        if prog.rank != rank:
            raise CompileError(
                f"compiled program {rank} is labeled rank {prog.rank}"
            )
        for name in ("kinds", "peers", "tags"):
            if len(getattr(prog, name)) != nops:
                _fail(rank, 0,
                      f"{name} table has {len(getattr(prog, name))} "
                      f"row(s) for {nops} op(s)")
        if len(prog.seg_bounds) != nops + 1:
            _fail(rank, 0,
                  f"segment bound table has {len(prog.seg_bounds)} "
                  f"entries for {nops} op(s)")
        seg_bounds = prog.seg_bounds.tolist()
        if seg_bounds and (seg_bounds[0] != 0
                           or seg_bounds[-1] != len(prog.seg_blocks)):
            _fail(rank, 0,
                  f"segment bounds span [{seg_bounds[0]}, {seg_bounds[-1]}]"
                  f" but the block table holds {len(prog.seg_blocks)} ids")
        for i in range(nops):
            if seg_bounds[i] > seg_bounds[i + 1]:
                _fail(rank, _step_of(exp_raw, i),
                      f"op {i}: segment bounds decrease "
                      f"({seg_bounds[i]} > {seg_bounds[i + 1]})")
        raw = prog.steps_raw.tolist()
        if raw != exp_raw:
            s = next(
                (i for i, (a, b) in enumerate(zip(raw, exp_raw)) if a != b),
                min(len(raw), len(exp_raw)) - 1,
            )
            _fail(rank, max(0, s - 1),
                  f"raw step boundary table {raw} does not match the "
                  f"schedule's step layout {exp_raw}")
        bad_blocks = [
            int(b) for b in prog.seg_blocks
            if not 0 <= b < schedule.nblocks
        ]
        if bad_blocks:
            idx = next(
                j for j, b in enumerate(prog.seg_blocks.tolist())
                if not 0 <= b < schedule.nblocks
            )
            op_i = max(0, bisect_right(seg_bounds, idx) - 1)
            _fail(rank, _step_of(exp_raw, op_i),
                  f"op {op_i}: block id {bad_blocks[0]} out of range "
                  f"(nblocks={schedule.nblocks}) — offset table corrupt")

        # Rung 3: recompute each row from the IR.
        kinds = prog.kinds.tolist()
        peers = prog.peers.tolist()
        tags = prog.tags.tolist()
        seg_blocks = prog.seg_blocks.tolist()
        for i, op in enumerate(flat_ops):
            step = _step_of(exp_raw, i)
            if isinstance(op, SendOp):
                chan = (rank, op.peer)
                seq = send_seq.get(chan, 0)
                send_seq[chan] = seq + 1
                want = (OP_SEND, op.peer, seq, list(op.blocks))
                signatures.add(op.blocks)
            elif isinstance(op, RecvOp):
                chan = (op.peer, rank)
                seq = recv_seq.get(chan, 0)
                recv_seq[chan] = seq + 1
                want = (
                    OP_REDUCE_RECV if op.reduce else OP_RECV,
                    op.peer,
                    seq,
                    list(op.blocks),
                )
            else:
                assert isinstance(op, CopyOp)
                want = (OP_COPY, -1, -1, [op.src, op.dst])
            if kinds[i] != want[0]:
                _fail(rank, step,
                      f"op {i}: wrong op code — table says "
                      f"{OP_NAMES.get(kinds[i], kinds[i])!r}, schedule "
                      f"has {OP_NAMES[want[0]]!r}")
            if peers[i] != want[1]:
                _fail(rank, step,
                      f"op {i}: stale peer table — compiled peer "
                      f"{peers[i]}, schedule says {want[1]}")
            if tags[i] != want[2]:
                _fail(rank, step,
                      f"op {i}: FIFO tag {tags[i]} does not match the "
                      f"channel sequence number {want[2]}")
            got_blocks = seg_blocks[seg_bounds[i]:seg_bounds[i + 1]]
            if got_blocks != want[3]:
                _fail(rank, step,
                      f"op {i}: segment blocks {got_blocks} do not match "
                      f"the schedule's {want[3]} (offset off-by-one?)")

        # Rung 4: fusion decisions.
        exp_fused = [0]
        for group in fused_groups(src_prog):
            exp_fused.append(exp_raw[group[-1] + 1])
        fused = prog.steps_fused.tolist()
        if fused != exp_fused:
            dropped = sorted(set(exp_fused) - set(fused))
            extra = sorted(set(fused) - set(exp_fused))
            at = (dropped or extra or [fused[-1] if fused else 0])[0]
            _fail(rank, _step_of(exp_raw, max(0, at - 1)),
                  f"fused step boundaries {fused} disagree with the "
                  f"legal fusion decision {exp_fused} — a fusion barrier "
                  f"was dropped or invented")

    # Rung 5: staging plan.
    want_plan = StagingPlan(signatures=tuple(sorted(signatures)))
    if compiled.staging_plan != want_plan:
        raise CompileError(
            "staging plan does not cover the schedule's send payload "
            f"signatures ({compiled.staging_plan.describe()} vs expected "
            f"{want_plan.describe()})"
        )
