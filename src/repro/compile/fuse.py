"""Build-time step fusion: merge copy-only steps into their successors.

Ring/Bruck-family schedules interleave local rotation steps (pure
:class:`~repro.core.schedule.CopyOp` steps) with communication steps.
Each step costs the executors one waitall round trip, so a copy-only step
that cannot conflict with its successor is pure overhead — the compiled
form drops the barrier between them.

Fusion rule (conservative, provably transparent):

    A step may be absorbed into the group started by its predecessor iff
    every step already in the group is copy-only **and** the group's
    accumulated block set is disjoint from the candidate step's block set
    (every block named by any send/recv/copy on either side).

Why this is sufficient:

* *Data semantics.*  Fused execution posts the merged step's sends first
  (snapshot), then applies all copies in original order, then drains
  receives.  The only reordering versus raw execution is that the later
  step's sends/recvs now happen around the earlier copies — disjointness
  makes every such exchange a no-op on values, and copy-vs-copy order
  within the group is preserved exactly.
* *Progress.*  Copy-only steps post no messages and wait on nothing, so
  merging them never changes which messages a rank waits for before
  sending — deadlock behavior is untouched.
* *Static findings.*  :func:`repro.check.run_checks`'s intra-step hazard
  lint flags block collisions inside one step; disjointness guarantees
  fusion can never manufacture a collision.  The transparency property
  suite pins ``run_checks`` findings as fusion-invariant.

:func:`fused_groups` computes the decision per rank (consumed by the
lowerer for the ``steps_fused`` table and re-derived independently by the
self-verification pass), and :func:`fuse_schedule` materializes a fused
:class:`~repro.core.schedule.Schedule` for IR-level consumers like the
static checker.
"""

from __future__ import annotations

from typing import List, Set

from ..core.schedule import (
    CopyOp,
    RankProgram,
    RecvOp,
    Schedule,
    SendOp,
    Step,
)

__all__ = ["fused_groups", "fuse_schedule"]


def _step_blocks(step: Step) -> Set[int]:
    """Every block id any op in ``step`` reads or writes."""
    blocks: Set[int] = set()
    for op in step.ops:
        if isinstance(op, (SendOp, RecvOp)):
            blocks.update(op.blocks)
        else:
            blocks.add(op.src)
            blocks.add(op.dst)
    return blocks


def _copy_only(step: Step) -> bool:
    return all(isinstance(op, CopyOp) for op in step.ops)


def fused_groups(program: RankProgram) -> List[List[int]]:
    """Partition a rank's step indices into fusable groups.

    Each group is a maximal run ``[s, s+1, ..., s+m]`` where every step
    but possibly the last is copy-only and all member block sets are
    pairwise disjoint (checked cumulatively — see the module docstring).
    Groups of length 1 mean "no fusion here".  Concatenating the groups
    always reproduces ``range(len(program.steps))``.
    """
    steps = program.steps
    if not steps:
        return []
    groups: List[List[int]] = []
    cur = [0]
    cur_blocks = _step_blocks(steps[0])
    cur_fusable = _copy_only(steps[0])
    for s in range(1, len(steps)):
        blocks = _step_blocks(steps[s])
        if cur_fusable and cur_blocks.isdisjoint(blocks):
            cur.append(s)
            cur_blocks |= blocks
            cur_fusable = _copy_only(steps[s])
        else:
            groups.append(cur)
            cur = [s]
            cur_blocks = blocks
            cur_fusable = _copy_only(steps[s])
    groups.append(cur)
    return groups


def fuse_schedule(schedule: Schedule) -> Schedule:
    """A step-fused copy of ``schedule`` (same ops, fewer barriers).

    Merged steps concatenate their ops in original order, so the flat op
    sequence — and therefore message matching, dataflow, and volumes —
    is unchanged; only the step grouping tightens.  The result is a
    full-fledged :class:`~repro.core.schedule.Schedule` accepted by every
    executor and by :func:`repro.check.run_checks` (whose findings are
    fusion-invariant by construction; pinned by the transparency suite).
    Schedules with nothing to fuse come back step-identical.
    """
    programs = []
    for prog in schedule.programs:
        fused = RankProgram(rank=prog.rank)
        for group in fused_groups(prog):
            ops = []
            for s in group:
                ops.extend(prog.steps[s].ops)
            fused.steps.append(Step(tuple(ops)))
        programs.append(fused)
    return Schedule(
        collective=schedule.collective,
        algorithm=schedule.algorithm,
        nranks=schedule.nranks,
        nblocks=schedule.nblocks,
        programs=programs,
        root=schedule.root,
        k=schedule.k,
        meta={**schedule.meta, "fused": True},
    )
