"""Compile the hot path: flat per-rank programs for every backend.

Interpreting the schedule IR per executed op (``isinstance`` dispatch,
per-block offset arithmetic, per-payload allocation) is the dominant cost
of small-message execution.  This package lowers a built
:class:`~repro.core.schedule.Schedule` once into flat, preresolved
per-rank tables — contiguous peer/offset/size/op/tag arrays plus a
pooled staging-buffer plan — executed by tight loops in both backends:
the threaded transport and lockstep runner walk bound action tuples, and
the simulator's cost accounting consumes a preflattened
``(is_send, peer)`` feed.

Pipeline::

    Schedule ──compile_schedule──▶ CompiledSchedule     (tables, cached)
                                      │ .bind(block_map)
                                      ▼
                                  BoundSchedule          (action tuples)
                                      │
                    executors' tight loops / simulator feed

Guarantees, in order of importance:

* **Transparency.**  Compiled execution is bit-identical to interpreted
  execution — result buffers, simulated costs, tuner winners, failure
  surfaces — pinned by the differential suite
  (``tests/properties/test_compile_transparency.py``) across the full
  registry grid, under fault injection and recovery, serial and
  parallel.
* **Self-verification.**  Every lowering is checked against its source
  IR by a recompute-everything ladder (:mod:`repro.compile.verify`);
  corrupt tables raise :class:`~repro.errors.CompileError` with
  rank/step-naming diagnostics instead of executing wrong (held to by
  the mutation corpus in ``tests/test_compile_mutations.py``).
* **Fusion is conservative.**  Build-time fusion only merges copy-only
  steps into successors with provably disjoint block sets
  (:mod:`repro.compile.fuse`), which cannot change data, progress, or
  :func:`repro.check.run_checks` findings.
* **Content-addressed caching.**  Artifacts are cached in process and
  (optionally) on disk next to their schedules (:mod:`repro.compile.cache`),
  keyed by the source schedule's fingerprint; disk loads re-run the full
  verification ladder and quarantine on failure.

``repro.api.execute(..., compiled=True)`` is the default path; pass
``compiled=False`` (or ``--no-compile`` on the CLI) to fall back to the
interpreter.
"""

from ..errors import ClassAnalysisError, CompileError
from .cache import (
    CompiledCache,
    PersistentCompiledCache,
    classes_store_key,
    compiled_store_key,
    get_or_classify,
    get_or_compile,
    global_compiled_cache,
    open_compiled_store,
    set_global_compiled_cache,
)
from .classes import (
    ClassProgram,
    RankClasses,
    classify,
    counterpart_ops,
    machine_asymmetry,
    partition_key,
)
from .fuse import fuse_schedule, fused_groups
from .lower import compile_schedule
from .program import (
    OP_COPY,
    OP_NAMES,
    OP_RECV,
    OP_REDUCE_RECV,
    OP_SEND,
    BoundSchedule,
    CompiledProgram,
    CompiledSchedule,
    StagingPlan,
    StagingPool,
)
from .runner import run_compiled_lockstep
from .verify import verify_compiled

__all__ = [
    "OP_SEND",
    "OP_RECV",
    "OP_REDUCE_RECV",
    "OP_COPY",
    "OP_NAMES",
    "CompiledProgram",
    "CompiledSchedule",
    "BoundSchedule",
    "StagingPlan",
    "StagingPool",
    "compile_schedule",
    "fuse_schedule",
    "fused_groups",
    "verify_compiled",
    "run_compiled_lockstep",
    "CompileError",
    "CompiledCache",
    "global_compiled_cache",
    "set_global_compiled_cache",
    "get_or_compile",
    "compiled_store_key",
    "PersistentCompiledCache",
    "open_compiled_store",
    "ClassAnalysisError",
    "ClassProgram",
    "RankClasses",
    "classify",
    "counterpart_ops",
    "machine_asymmetry",
    "partition_key",
    "classes_store_key",
    "get_or_classify",
]
