"""Lower a schedule into :class:`~repro.compile.program.CompiledSchedule`.

Two passes over the IR:

1. a channel census collecting, per directed ``(src, dst)`` pair, the
   FIFO sequence of send block tuples (needed to assign receive tags and
   to precompute the FIFO block-mismatch diagnoses the interpreter
   raises at runtime);
2. per rank, a flattening pass writing one table row per op in program
   order, recording raw step boundaries and the fused boundaries decided
   by :func:`repro.compile.fuse.fused_groups`.

The lowering is deterministic, so the self-verification pass
(:mod:`repro.compile.verify`) can re-derive every table from the IR and
compare exactly — any disagreement is a compiler bug (or a corrupted
artifact) and raises :class:`~repro.errors.CompileError` instead of
executing wrong.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.schedule import CopyOp, RecvOp, Schedule, SendOp
from ..obs import Obs, get_obs
from .fuse import fused_groups
from .program import (
    OP_COPY,
    OP_RECV,
    OP_REDUCE_RECV,
    OP_SEND,
    CompiledProgram,
    CompiledSchedule,
    StagingPlan,
)

__all__ = ["compile_schedule"]


def _lower(schedule: Schedule) -> CompiledSchedule:
    # Pass 1: per-channel FIFO census of send block tuples.
    chan_sends: Dict[Tuple[int, int], List[Tuple[int, ...]]] = {}
    for prog in schedule.programs:
        for _, op in prog.iter_ops():
            if isinstance(op, SendOp):
                chan_sends.setdefault((prog.rank, op.peer), []).append(
                    op.blocks
                )

    # Pass 2: flatten every rank into tables.
    programs: List[CompiledProgram] = []
    send_seq: Dict[Tuple[int, int], int] = {}
    recv_seq: Dict[Tuple[int, int], int] = {}
    fifo_mismatches: Dict[
        Tuple[int, int], Tuple[Tuple[int, ...], Tuple[int, ...]]
    ] = {}
    signatures = set()
    for prog in schedule.programs:
        kinds: List[int] = []
        peers: List[int] = []
        tags: List[int] = []
        seg_bounds: List[int] = [0]
        seg_blocks: List[int] = []
        steps_raw: List[int] = [0]
        rank = prog.rank
        for step in prog.steps:
            for op in step.ops:
                if isinstance(op, SendOp):
                    chan = (rank, op.peer)
                    seq = send_seq.get(chan, 0)
                    send_seq[chan] = seq + 1
                    kinds.append(OP_SEND)
                    peers.append(op.peer)
                    tags.append(seq)
                    seg_blocks.extend(op.blocks)
                    signatures.add(op.blocks)
                elif isinstance(op, RecvOp):
                    chan = (op.peer, rank)
                    seq = recv_seq.get(chan, 0)
                    recv_seq[chan] = seq + 1
                    kinds.append(OP_REDUCE_RECV if op.reduce else OP_RECV)
                    peers.append(op.peer)
                    tags.append(seq)
                    seg_blocks.extend(op.blocks)
                    sends = chan_sends.get(chan, ())
                    if seq < len(sends) and sends[seq] != op.blocks:
                        fifo_mismatches[(rank, len(kinds) - 1)] = (
                            sends[seq],
                            op.blocks,
                        )
                else:
                    kinds.append(OP_COPY)
                    peers.append(-1)
                    tags.append(-1)
                    seg_blocks.extend((op.src, op.dst))
                seg_bounds.append(len(seg_blocks))
            steps_raw.append(len(kinds))
        steps_fused = [0]
        for group in fused_groups(prog):
            steps_fused.append(steps_raw[group[-1] + 1])
        programs.append(
            CompiledProgram(
                rank=rank,
                kinds=np.asarray(kinds, dtype=np.int8),
                peers=np.asarray(peers, dtype=np.int32),
                tags=np.asarray(tags, dtype=np.int32),
                seg_bounds=np.asarray(seg_bounds, dtype=np.int32),
                seg_blocks=np.asarray(seg_blocks, dtype=np.int32),
                steps_raw=np.asarray(steps_raw, dtype=np.int32),
                steps_fused=np.asarray(steps_fused, dtype=np.int32),
            )
        )
    return CompiledSchedule(
        collective=schedule.collective,
        algorithm=schedule.algorithm,
        nranks=schedule.nranks,
        nblocks=schedule.nblocks,
        root=schedule.root,
        k=schedule.k,
        source_fingerprint=schedule.fingerprint(),
        programs=tuple(programs),
        staging_plan=StagingPlan(signatures=tuple(sorted(signatures))),
        fifo_mismatches=fifo_mismatches,
    )


def compile_schedule(
    schedule: Schedule,
    *,
    verify: bool = True,
    obs: Optional[Obs] = None,
) -> CompiledSchedule:
    """Lower ``schedule`` to flat per-rank tables (verified by default).

    With ``verify=True`` the self-verification pass re-derives every
    table from the IR and compares exactly, raising
    :class:`~repro.errors.CompileError` on any disagreement — lowering
    bugs fail loudly at compile time, never as silently wrong data.

    When observability is enabled the lowering runs inside a ``compile``
    span and bumps ``repro_compile_total`` / ``repro_compile_ops_total``
    (instrumentation changes no table — same transparency contract as
    every other subsystem).
    """
    o = get_obs(obs)
    if o.enabled:
        with o.span("compile", schedule=schedule.describe()):
            compiled = _lower(schedule)
            if verify:
                compiled.verify(schedule)
        m = o.metrics
        m.counter("repro_compile_total").inc()
        m.counter("repro_compile_ops_total").inc(compiled.total_ops())
    else:
        compiled = _lower(schedule)
        if verify:
            compiled.verify(schedule)
    return compiled
