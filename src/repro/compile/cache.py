"""Content-addressed caching of compiled programs.

Compiled artifacts are cached alongside schedules, at both tiers:

* :class:`CompiledCache` — in-process LRU keyed by the **source
  schedule's fingerprint** (content address: two IR-identical schedules
  share one compiled artifact, whatever parameters built them), with the
  same hit/miss/eviction accounting and ``repro_cache_lookups_total``
  counters (``cache="compiled"``) as the schedule cache;
* :class:`PersistentCompiledCache` — a disk tier underneath, mirroring
  :class:`~repro.store.schedules.PersistentScheduleCache`: write-through
  pickled artifacts under ``compiled/…`` keys, byte integrity handled by
  :class:`~repro.store.disk.DiskStore`'s checksum ladder, and a semantic
  rung on top — every loaded artifact re-runs the full self-verification
  ladder against the schedule it is being fetched for, and anything that
  fails is quarantined and recompiled, never executed.

The process-global instance (swap it with
:func:`set_global_compiled_cache`) backs the executors' and simulator's
``compiled=True`` default, so the lowering cost is paid once per
distinct schedule per process.
"""

from __future__ import annotations

import base64
import pickle
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Tuple, Union

from ..core.cache import CacheStats
from ..core.schedule import Schedule
from ..errors import ReproError, ScheduleError
from ..obs import OBS
from .lower import compile_schedule
from .program import CompiledSchedule

__all__ = [
    "CompiledCache",
    "global_compiled_cache",
    "set_global_compiled_cache",
    "get_or_compile",
    "compiled_store_key",
    "PersistentCompiledCache",
    "open_compiled_store",
    "classes_store_key",
    "get_or_classify",
    "clear_class_cache",
]


class CompiledCache:
    """Bounded, thread-safe LRU of compiled programs.

    Keys are source-schedule fingerprints, so the cache is content
    addressed end to end: equal IR → one artifact, and a drifted builder
    can never serve a stale lowering.  Stats share the
    :class:`~repro.core.cache.CacheStats` protocol.
    """

    def __init__(self, maxsize: int = 256, name: str = "compiled") -> None:
        if maxsize < 1:
            raise ScheduleError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.name = name
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._entries: "OrderedDict[str, CompiledSchedule]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> CacheStats:
        """Frozen snapshot of the hit/miss/eviction counters."""
        return CacheStats(
            hits=self._hits, misses=self._misses, evictions=self._evictions
        )

    def get_or_compile(
        self, schedule: Schedule
    ) -> Tuple[CompiledSchedule, bool]:
        """Return ``(compiled, hit)`` — lowering and inserting on a miss."""
        key = schedule.fingerprint()
        with self._lock:
            compiled = self._entries.get(key)
            if compiled is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                if OBS.enabled:
                    OBS.metrics.counter(
                        "repro_cache_lookups_total",
                        cache=self.name,
                        outcome="hit",
                    ).inc()
                return compiled, True
            self._misses += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_cache_lookups_total", cache=self.name, outcome="miss"
            ).inc()
        # Compile outside the lock: lowering is pure, so a racing
        # duplicate compile wastes a little work but stays correct.
        compiled = self._build(schedule, key)
        self._insert(key, compiled)
        return compiled, False

    def _build(self, schedule: Schedule, key: str) -> CompiledSchedule:
        return compile_schedule(schedule)

    def _insert(self, key: str, compiled: CompiledSchedule) -> None:
        evicted = 0
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted and OBS.enabled:
            OBS.metrics.counter(
                "repro_cache_evictions_total", cache=self.name
            ).inc(evicted)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0


_GLOBAL = CompiledCache()


def global_compiled_cache() -> CompiledCache:
    """The process-global compiled-program cache.

    Backs every ``compiled=True`` execution and simulation; sweep worker
    processes each grow their own, exactly like the schedule cache.
    """
    return _GLOBAL


def set_global_compiled_cache(cache: CompiledCache) -> CompiledCache:
    """Swap the process-global compiled cache; returns the previous one.

    The hook for backing compiled execution with a disk store (a
    :class:`PersistentCompiledCache` *is a* :class:`CompiledCache`).
    Callers should restore the previous instance when done so
    attachment never leaks across runs.
    """
    global _GLOBAL
    if not isinstance(cache, CompiledCache):
        raise ScheduleError(
            f"global compiled cache must be a CompiledCache, "
            f"got {type(cache).__name__}"
        )
    previous = _GLOBAL
    _GLOBAL = cache
    return previous


def get_or_compile(schedule: Schedule) -> CompiledSchedule:
    """The compiled artifact for ``schedule``, via the global cache."""
    return _GLOBAL.get_or_compile(schedule)[0]


def compiled_store_key(schedule: Schedule) -> str:
    """The disk-store key for one schedule's compiled artifact.

    Parameter segments keep the store browsable next to its
    ``schedule/…`` siblings; the trailing fingerprint prefix makes the
    key content-addressed (an edited builder files its new lowering
    under a new key instead of colliding with the stale one).
    """
    fp = schedule.fingerprint()
    return (
        f"compiled/{schedule.collective}/{schedule.algorithm}/"
        f"p={schedule.nranks}/k={schedule.k}/root={schedule.root}/"
        f"{fp[:16]}"
    )


class PersistentCompiledCache(CompiledCache):
    """A :class:`CompiledCache` with a disk tier under the memory LRU.

    ``get_or_compile`` keeps the exact ``(compiled, hit)`` contract,
    with ``hit`` true whenever the lowering was avoided — from memory
    *or* disk.  Disk entries that fail byte checksums are already
    quarantined misses inside :class:`~repro.store.disk.DiskStore`;
    entries that decode but fail the self-verification ladder against
    the requested schedule are quarantined here (``semantic`` rung) and
    recompiled — damage is never an error and never executes.
    """

    def __init__(self, store, *, maxsize: int = 256,
                 name: str = "compiled") -> None:
        super().__init__(maxsize=maxsize, name=name)
        self.store = store

    def get_or_compile(
        self, schedule: Schedule
    ) -> Tuple[CompiledSchedule, bool]:
        """``(compiled, hit)`` — memory, then disk, then compile+persist."""
        key = schedule.fingerprint()
        with self._lock:
            compiled = self._entries.get(key)
            if compiled is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return compiled, True
        compiled = self._load(schedule)
        if compiled is not None:
            with self._lock:
                self._hits += 1
            self._insert(key, compiled)
            return compiled, True
        with self._lock:
            self._misses += 1
        compiled = compile_schedule(schedule)
        blob = pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)
        self.store.put(
            compiled_store_key(schedule),
            {
                "source_fingerprint": key,
                "compiled_fingerprint": compiled.fingerprint(),
                "compiled_pickle": base64.b64encode(blob).decode("ascii"),
            },
        )
        self._insert(key, compiled)
        return compiled, False

    def _load(self, schedule: Schedule) -> Optional[CompiledSchedule]:
        """Decode + re-verify one disk entry, or ``None``.

        The full self-verification ladder runs against the schedule the
        artifact is being fetched for — pickle drift, a stale lowering,
        or any table corruption that survived the byte checksum reads as
        a quarantined miss, never an error.
        """
        store_key = compiled_store_key(schedule)
        payload = self.store.get(store_key)
        if payload is None:
            return None
        try:
            compiled = pickle.loads(
                base64.b64decode(payload["compiled_pickle"])
            )
            if not isinstance(compiled, CompiledSchedule):
                raise ReproError("entry did not decode to a CompiledSchedule")
            compiled.verify(schedule)
        except Exception as exc:  # noqa: BLE001 — quarantine, never crash
            self.store._quarantine(
                self.store.path_for(store_key), "semantic"
            )
            if OBS.enabled:
                OBS.metrics.counter(
                    "repro_store_semantic_rejects_total",
                    store=self.store.name,
                    error=type(exc).__name__,
                ).inc()
            return None
        return compiled

    def disk_stats(self):
        """The disk tier's :class:`~repro.store.disk.StoreStats`."""
        return self.store.stats()


# ----------------------------------------------------------------------
# Class-partition cache: rank-equivalence partitions are derived from a
# compiled artifact + machine link profile + byte residue, so they ride
# the same two tiers — an in-process LRU here, and (when the global
# compiled cache is disk-backed) content-addressed sidecar entries under
# ``classes/…`` next to their ``compiled/…`` siblings.
# ----------------------------------------------------------------------

_CLASS_MAXSIZE = 256
_class_entries: "OrderedDict" = OrderedDict()
_class_lock = threading.Lock()


def classes_store_key(schedule: Schedule, key_tuple) -> str:
    """Disk-store key for one (schedule, machine, residue) partition.

    ``key_tuple`` is the :func:`repro.compile.classes.partition_key`
    value — the trailing fingerprint prefix plus the link-profile and
    residue segments make the key fully content-addressed.
    """
    fp, (nodes, npg), residue = key_tuple
    return (
        f"classes/{schedule.collective}/{schedule.algorithm}/"
        f"p={schedule.nranks}/k={schedule.k}/root={schedule.root}/"
        f"{fp[:16]}/n{nodes}-g{npg}-r{residue}"
    )


def get_or_classify(schedule: Schedule, machine, nbytes: int):
    """The rank-equivalence partition for one run, via the global caches.

    Compiles (or fetches) the schedule's flat tables, then returns the
    cached :class:`~repro.compile.classes.RankClasses` for
    ``(tables, machine link profile, nbytes % nblocks)`` — classifying
    on a miss.  When the global compiled cache is disk-backed
    (:class:`PersistentCompiledCache`), partitions are persisted
    write-through as ``classes/…`` entries; loaded entries are
    sanity-checked and quarantined on any mismatch, mirroring the
    compiled tier's semantic rung.
    """
    from .classes import RankClasses, classify, partition_key

    compiled = _GLOBAL.get_or_compile(schedule)[0]
    key = partition_key(compiled, machine, nbytes)
    with _class_lock:
        cached = _class_entries.get(key)
        if cached is not None:
            _class_entries.move_to_end(key)
            if OBS.enabled:
                OBS.metrics.counter(
                    "repro_cache_lookups_total",
                    cache="classes",
                    outcome="hit",
                ).inc()
            return cached
    if OBS.enabled:
        OBS.metrics.counter(
            "repro_cache_lookups_total", cache="classes", outcome="miss"
        ).inc()
    store = getattr(_GLOBAL, "store", None)
    store_key = classes_store_key(schedule, key) if store is not None else None
    if store is not None:
        payload = store.get(store_key)
        if payload is not None:
            try:
                classes = pickle.loads(
                    base64.b64decode(payload["classes_pickle"])
                )
                if not isinstance(classes, RankClasses):
                    raise ReproError("entry did not decode to RankClasses")
                if (
                    classes.nranks != compiled.nranks
                    or classes.nblocks != compiled.nblocks
                    or classes.residue != key[2]
                    or payload.get("classes_fingerprint")
                    != classes.fingerprint()
                ):
                    raise ReproError("partition does not match its key")
            except Exception as exc:  # noqa: BLE001 — quarantine, not crash
                store._quarantine(store.path_for(store_key), "semantic")
                if OBS.enabled:
                    OBS.metrics.counter(
                        "repro_store_semantic_rejects_total",
                        store=store.name,
                        error=type(exc).__name__,
                    ).inc()
            else:
                _class_insert(key, classes)
                return classes
    classes = classify(compiled, machine, nbytes)
    if store is not None:
        blob = pickle.dumps(classes, protocol=pickle.HIGHEST_PROTOCOL)
        store.put(
            store_key,
            {
                "source_fingerprint": compiled.fingerprint(),
                "classes_fingerprint": classes.fingerprint(),
                "classes_pickle": base64.b64encode(blob).decode("ascii"),
            },
        )
    _class_insert(key, classes)
    return classes


def _class_insert(key, classes) -> None:
    evicted = 0
    with _class_lock:
        _class_entries[key] = classes
        _class_entries.move_to_end(key)
        while len(_class_entries) > _CLASS_MAXSIZE:
            _class_entries.popitem(last=False)
            evicted += 1
    if evicted and OBS.enabled:
        OBS.metrics.counter(
            "repro_cache_evictions_total", cache="classes"
        ).inc(evicted)


def clear_class_cache() -> None:
    """Drop every in-process class partition (tests, cache swaps)."""
    with _class_lock:
        _class_entries.clear()


def open_compiled_store(
    root: Union[str, Path],
    *,
    maxsize: int = 256,
    fsync: bool = False,
) -> PersistentCompiledCache:
    """Open (creating if needed) a disk-backed compiled cache at ``root``.

    The same store root can hold schedule and compiled entries side by
    side (distinct ``schedule/…`` vs ``compiled/…`` key prefixes).
    """
    from ..store.disk import DiskStore

    return PersistentCompiledCache(
        DiskStore(root, fsync=fsync, name="compiled"), maxsize=maxsize
    )
