"""Static message-matching interpreter over the Schedule IR.

This is the engine under :mod:`repro.check`'s deadlock detector.  It
never moves data and never touches the DES: it resolves, purely from the
program text, *which send matches which recv* (the MPI non-overtaking
rule: per ``(src, dst)`` channel, the n-th send matches the n-th recv),
then runs a monotone fixpoint over per-rank program counters to decide
how far every rank can get under a chosen send-completion semantics:

eager (threshold = ``None``)
    A send completes the moment it is posted (unlimited buffering).
    This is exactly the contract :func:`repro.core.runner.run_schedule`
    implements, so a schedule that deadlocks here deadlocks everywhere.
rendezvous (threshold = ``0``)
    A send completes only once the receiver has *posted* the matching
    recv — i.e. the receiver's program counter has reached the step
    containing it (ops post at step entry).  This is the conservative
    MPI semantics for messages above the eager limit; a schedule clean
    here is deadlock-free at any eager threshold.
eager-threshold (threshold = ``t`` bytes)
    Sends whose payload is ``<= t`` bytes behave eagerly, larger ones
    rendezvous — the mixed regime real MPI runs in, where "works on my
    laptop" schedules break at scale when payloads cross the limit.

The fixpoint is sound and complete for this IR because progress is
monotone: once a rank's counter can advance it never retracts, so the
set of reachable counters has a unique maximal element regardless of
visit order.  Any rank left short of program end is genuinely stuck, and
:func:`waits_of` / :func:`find_cycle` turn the stuck state into the
exact wait-for cycle (ranks, steps, ops) for the diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.blocks import BlockMap
from ..core.schedule import RecvOp, Schedule, SendOp

__all__ = ["OpRef", "Matching", "match_channels", "InterpResult", "interpret"]


@dataclass(frozen=True)
class OpRef:
    """Location of one op inside a schedule: ``(rank, step, index)``.

    ``index`` is the position within ``Step.ops`` — together the triple
    names an op unambiguously, which is what every diagnostic prints.
    """

    rank: int
    step: int
    index: int


@dataclass
class Matching:
    """Static FIFO matching of sends to recvs per ``(src, dst)`` channel.

    ``send_to_recv`` / ``recv_to_send`` map matched pairs both ways;
    ``unmatched_sends`` are messages that would sit in a channel forever
    (the runner's "sent but never received" error), ``unmatched_recvs``
    are waits that can never be satisfied (a guaranteed hang).
    """

    send_to_recv: Dict[OpRef, OpRef] = field(default_factory=dict)
    recv_to_send: Dict[OpRef, OpRef] = field(default_factory=dict)
    unmatched_sends: List[OpRef] = field(default_factory=list)
    unmatched_recvs: List[OpRef] = field(default_factory=list)


def match_channels(schedule: Schedule) -> Matching:
    """Resolve the FIFO send/recv pairing for every directed channel."""
    sends: Dict[Tuple[int, int], List[OpRef]] = {}
    recvs: Dict[Tuple[int, int], List[OpRef]] = {}
    for prog in schedule.programs:
        for step_idx, step in enumerate(prog.steps):
            for op_idx, op in enumerate(step.ops):
                ref = OpRef(prog.rank, step_idx, op_idx)
                if isinstance(op, SendOp):
                    sends.setdefault((prog.rank, op.peer), []).append(ref)
                elif isinstance(op, RecvOp):
                    recvs.setdefault((op.peer, prog.rank), []).append(ref)

    matching = Matching()
    for channel in sorted(set(sends) | set(recvs)):
        ss = sends.get(channel, [])
        rr = recvs.get(channel, [])
        for s_ref, r_ref in zip(ss, rr):
            matching.send_to_recv[s_ref] = r_ref
            matching.recv_to_send[r_ref] = s_ref
        matching.unmatched_sends.extend(ss[len(rr):])
        matching.unmatched_recvs.extend(rr[len(ss):])
    return matching


@dataclass
class InterpResult:
    """Outcome of the fixpoint for one send-completion semantics.

    ``pc[r]`` is how many steps rank ``r`` completed; ``stuck`` lists the
    ranks whose counter stopped short of program end.  ``deadlocked`` is
    their non-emptiness.
    """

    mode: str
    pc: List[int]
    stuck: List[int]
    matching: Matching
    eager_threshold: Optional[int] = None
    nbytes: int = 0

    @property
    def deadlocked(self) -> bool:
        """True when at least one rank could not finish its program."""
        return bool(self.stuck)


def _op_at(schedule: Schedule, ref: OpRef):
    return schedule.programs[ref.rank].steps[ref.step].ops[ref.index]


def interpret(
    schedule: Schedule,
    *,
    eager_threshold: Optional[int] = None,
    nbytes: int = 0,
    matching: Optional[Matching] = None,
) -> InterpResult:
    """Run the monotone progress fixpoint under the given send semantics.

    ``eager_threshold=None`` is fully eager, ``0`` fully rendezvous, any
    other value the mixed regime (payloads ``<= threshold`` bytes eager).
    ``nbytes`` sizes payloads for the threshold comparison and is unused
    when the threshold is ``None`` or ``0``.
    """
    if matching is None:
        matching = match_channels(schedule)
    p = schedule.nranks
    programs = schedule.programs
    blocks: Optional[BlockMap] = (
        schedule.block_map(nbytes)
        if eager_threshold not in (None, 0)
        else None
    )

    def send_is_rendezvous(op: SendOp) -> bool:
        if eager_threshold is None:
            return False
        if eager_threshold <= 0:
            return True
        assert blocks is not None
        return blocks.bytes_of(op.blocks) > eager_threshold

    # Precompute, per (rank, step): the match refs its completion waits
    # on.  Recvs always wait on their matching send being posted;
    # rendezvous sends additionally wait on their matching recv being
    # posted.  Unmatched ops wait forever (None sentinel).
    waits: List[List[List[Optional[OpRef]]]] = []
    for rank in range(p):
        per_rank: List[List[Optional[OpRef]]] = []
        for step_idx, step in enumerate(programs[rank].steps):
            deps: List[Optional[OpRef]] = []
            for op_idx, op in enumerate(step.ops):
                ref = OpRef(rank, step_idx, op_idx)
                if isinstance(op, RecvOp):
                    deps.append(matching.recv_to_send.get(ref))
                elif isinstance(op, SendOp) and send_is_rendezvous(op):
                    deps.append(matching.send_to_recv.get(ref))
            per_rank.append(deps)
        waits.append(per_rank)

    pc = [0] * p
    lengths = [len(programs[r].steps) for r in range(p)]
    changed = True
    while changed:
        changed = False
        for rank in range(p):
            # A rank may clear several steps per sweep once its peers
            # have advanced; loop until this rank blocks again.
            while pc[rank] < lengths[rank]:
                deps = waits[rank][pc[rank]]
                # An op at (q, j) is posted iff rank q has entered step
                # j, i.e. pc[q] >= j (ops post at step entry).
                if any(d is None or pc[d.rank] < d.step for d in deps):
                    break
                pc[rank] += 1
                changed = True

    stuck = [r for r in range(p) if pc[r] < lengths[r]]
    mode = (
        "eager"
        if eager_threshold is None
        else ("rendezvous" if eager_threshold <= 0 else f"eager<={eager_threshold}")
    )
    return InterpResult(
        mode=mode,
        pc=pc,
        stuck=stuck,
        matching=matching,
        eager_threshold=eager_threshold,
        nbytes=nbytes,
    )


@dataclass(frozen=True)
class Wait:
    """One unsatisfied dependency of a stuck rank.

    ``waiter`` is the blocked op; ``on`` is the matched op it needs
    posted (``None`` when no match exists — an unsatisfiable wait)."""

    waiter: OpRef
    on: Optional[OpRef]
    kind: str  # "recv" (wait for send) or "send" (rendezvous wait for recv)


def waits_of(schedule: Schedule, result: InterpResult) -> Dict[int, List[Wait]]:
    """The unsatisfied dependencies of every stuck rank, in op order."""
    out: Dict[int, List[Wait]] = {}
    matching = result.matching
    for rank in result.stuck:
        step_idx = result.pc[rank]
        step = schedule.programs[rank].steps[step_idx]
        pending: List[Wait] = []
        for op_idx, op in enumerate(step.ops):
            ref = OpRef(rank, step_idx, op_idx)
            if isinstance(op, RecvOp):
                dep = matching.recv_to_send.get(ref)
                if dep is None or result.pc[dep.rank] < dep.step:
                    pending.append(Wait(ref, dep, "recv"))
            elif isinstance(op, SendOp):
                dep = matching.send_to_recv.get(ref)
                if _send_blocked(schedule, result, op, dep):
                    pending.append(Wait(ref, dep, "send"))
        out[rank] = pending
    return out


def _send_blocked(
    schedule: Schedule,
    result: InterpResult,
    op: SendOp,
    dep: Optional[OpRef],
) -> bool:
    # Mirror interpret()'s classification: eager sends never block;
    # rendezvous sends block while their matched recv is unposted or
    # missing.  Threshold mode re-sizes the payload the same way.
    if result.eager_threshold is None:
        return False
    if result.eager_threshold > 0:
        size = schedule.block_map(result.nbytes).bytes_of(op.blocks)
        if size <= result.eager_threshold:
            return False
    return dep is None or result.pc[dep.rank] < dep.step



def find_cycle(
    schedule: Schedule, result: InterpResult
) -> Optional[List[Wait]]:
    """Extract one wait-for cycle among the stuck ranks, if any exists.

    Edges run from a blocked rank to the rank whose unposted op it waits
    on.  Unsatisfiable waits (no matching op at all) have no edge — a
    rank stuck only on those is reported separately, not as a cycle.
    """
    all_waits = waits_of(schedule, result)
    edges: Dict[int, Wait] = {}
    for rank, pending in all_waits.items():
        for wait in pending:
            if wait.on is not None and wait.on.rank in all_waits:
                edges[rank] = wait
                break

    for start in sorted(edges):
        seen: Dict[int, int] = {}
        path: List[Wait] = []
        node = start
        while node in edges and node not in seen:
            seen[node] = len(path)
            path.append(edges[node])
            node = edges[node].on.rank  # type: ignore[union-attr]
        if node in seen:
            return path[seen[node]:]
    return None
