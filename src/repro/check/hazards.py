"""Intra-step buffer-hazard detection.

All ops inside a :class:`~repro.core.schedule.Step` post concurrently
and complete together at the waitall; within that window, two ops that
touch the same block on the same rank can race on a real transport.
The IR's reference semantics (sends snapshot at step start, copies
apply at step start, recvs apply at step end in op order) make many of
these overlaps well-defined *here* — the severity ladder encodes which
of them survive contact with a zero-copy MPI implementation:

error — two concurrent writers with no defined order on real hardware:
    * ``hazard-write-write`` — two plain (non-reduce) recvs, or a plain
      recv and a reduce recv, landing in the same block: last-writer
      wins nondeterministically.
    * ``hazard-copy-recv`` — a copy's destination is also written by a
      concurrent recv (the copy applies at step start in the IR, but a
      real memcpy races the incoming message).
    * ``hazard-copy-copy`` — two copies with the same destination.
warning — read-write pairs legal under snapshot semantics but racy
    under MPI's "don't touch the buffer until wait completes" rules:
    * ``hazard-read-write`` — a send reads a block a concurrent plain
      recv or copy overwrites.
    * ``hazard-copy-read`` — a copy reads a block a concurrent recv
      overwrites.
info — the canonical butterfly idiom, flagged so implementers know a
    staging buffer is required, never a failure:
    * ``hazard-send-reduce`` — a send reads a block a concurrent
      *reduce* recv combines into (recursive-multiplying/halving
      exchanges do this on every step).

Two reduce recvs into the same block produce **no** finding: the IR
applies them in op order, reduction order is deterministic, and the
k-nomial reduce idiom depends on it.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..core.schedule import CopyOp, RecvOp, Schedule, SendOp, Step
from .findings import Finding

__all__ = ["check_hazards"]


def _op_name(op) -> str:
    if isinstance(op, SendOp):
        return f"send{list(op.blocks)}->{op.peer}"
    if isinstance(op, RecvOp):
        kind = "recv+reduce" if op.reduce else "recv"
        return f"{kind}{list(op.blocks)}<-{op.peer}"
    return f"copy {op.src}->{op.dst}"


def _classify(step: Step):
    """Per-block access sets for one step.

    Returns ``(writes, reads)`` where writes maps block -> list of
    (op, kind) with kind in {"recv", "reduce", "copy"} and reads maps
    block -> list of (op, kind) with kind in {"send", "copy"}.
    """
    writes: Dict[int, List[Tuple[object, str]]] = {}
    reads: Dict[int, List[Tuple[object, str]]] = {}
    for op in step.ops:
        if isinstance(op, SendOp):
            for b in op.blocks:
                reads.setdefault(b, []).append((op, "send"))
        elif isinstance(op, RecvOp):
            kind = "reduce" if op.reduce else "recv"
            for b in op.blocks:
                writes.setdefault(b, []).append((op, kind))
        elif isinstance(op, CopyOp):
            reads.setdefault(op.src, []).append((op, "copy"))
            writes.setdefault(op.dst, []).append((op, "copy"))
    return writes, reads


def check_hazards(schedule: Schedule) -> List[Finding]:
    """Scan every rank's steps for concurrent same-block access pairs."""
    findings: List[Finding] = []
    for prog in schedule.programs:
        for step_idx, step in enumerate(prog.steps):
            if len(step.ops) < 2:
                continue
            writes, reads = _classify(step)
            seen: Set[Tuple[str, int, int, int]] = set()

            def emit(code, severity, block, a, b, detail):
                # One finding per (code, block, op-pair), not per block
                # permutation, keeps ring-family reports readable.
                key = (code, block, id(a), id(b))
                if key in seen:
                    return
                seen.add(key)
                findings.append(
                    Finding(
                        code=code,
                        severity=severity,
                        message=(
                            f"rank {prog.rank} step {step_idx} block "
                            f"{block}: {_op_name(a)} and {_op_name(b)} "
                            f"{detail}"
                        ),
                        rank=prog.rank,
                        step=step_idx,
                        op=_op_name(a),
                    )
                )

            for block, writers in writes.items():
                # write/write pairs
                for i in range(len(writers)):
                    for j in range(i + 1, len(writers)):
                        (op_a, kind_a), (op_b, kind_b) = writers[i], writers[j]
                        kinds = {kind_a, kind_b}
                        if kinds == {"reduce"}:
                            continue  # deterministic in-order reduction
                        if "copy" in kinds and kinds != {"copy"}:
                            emit(
                                "hazard-copy-recv", "error", block,
                                op_a, op_b,
                                "both write it concurrently (local copy "
                                "races the incoming message)",
                            )
                        elif kinds == {"copy"}:
                            emit(
                                "hazard-copy-copy", "error", block,
                                op_a, op_b,
                                "are two concurrent copies into the same "
                                "destination",
                            )
                        else:
                            emit(
                                "hazard-write-write", "error", block,
                                op_a, op_b,
                                "both write it concurrently — last writer "
                                "wins nondeterministically",
                            )
                # read/write pairs
                for op_r, kind_r in reads.get(block, ()):
                    for op_w, kind_w in writers:
                        if op_r is op_w:
                            continue
                        if kind_r == "send" and kind_w == "reduce":
                            emit(
                                "hazard-send-reduce", "info", block,
                                op_r, op_w,
                                "overlap (butterfly exchange idiom: a "
                                "zero-copy implementation needs a staging "
                                "buffer for the incoming reduction)",
                            )
                        elif kind_r == "send":
                            emit(
                                "hazard-read-write", "warning", block,
                                op_r, op_w,
                                "overlap: the send reads a block the "
                                "concurrent write overwrites (safe only "
                                "under snapshot-at-post semantics)",
                            )
                        else:  # copy reads a block something overwrites
                            emit(
                                "hazard-copy-read", "warning", block,
                                op_r, op_w,
                                "overlap: the copy reads a block the "
                                "concurrent write overwrites",
                            )
    return findings
