"""Symbolic-dataflow lint: garbage reads and double-counted reductions.

This pass reuses the contribution-set abstraction of
:mod:`repro.core.validate` — every ``(rank, block)`` slot tracks which
ranks' original inputs are folded into it — but collects *findings*
instead of raising on the first violation, so one run reports every
garbage send, every double-counted reduction, and every postcondition
miss in a broken schedule.

It must only run on schedules the deadlock/channel passes found
executable (the generic runner drives it, and an unmatched or
shape-mismatched message would abort the walk); the orchestrator in
:mod:`repro.check` enforces that ordering.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.runner import run_schedule
from ..core.schedule import CopyOp, RecvOp, Schedule, SendOp
from ..core.validate import Content, initial_state, postcondition_errors
from .findings import Finding

__all__ = ["check_dataflow"]


class _LintModel:
    """Tolerant contribution-set model: records findings, keeps walking.

    Where :class:`repro.core.validate._SymbolicModel` raises, this model
    appends a :class:`Finding` and picks the least-surprising recovery
    (garbage stays garbage, overlapping reductions union anyway) so the
    walk reaches the postcondition check regardless.
    """

    def __init__(self, schedule: Schedule) -> None:
        self.schedule = schedule
        self.state = initial_state(schedule)
        self.findings: List[Finding] = []

    def snapshot(self, rank: int, op: SendOp) -> Tuple[Content, ...]:
        payload = tuple(self.state[rank][b] for b in op.blocks)
        for b, content in zip(op.blocks, payload):
            if content is None:
                self.findings.append(
                    Finding(
                        code="dataflow-garbage-send",
                        severity="error",
                        message=(
                            f"rank {rank} sends uninitialized (garbage) "
                            f"block {b} to rank {op.peer}"
                        ),
                        rank=rank,
                        op=f"send{list(op.blocks)}->{op.peer}",
                    )
                )
        return payload

    def apply_recv(
        self, rank: int, op: RecvOp, payload: Tuple[Content, ...]
    ) -> None:
        for b, content in zip(op.blocks, payload):
            if not op.reduce:
                self.state[rank][b] = content
                continue
            local = self.state[rank][b]
            if local is None:
                self.findings.append(
                    Finding(
                        code="dataflow-reduce-garbage",
                        severity="error",
                        message=(
                            f"rank {rank} reduces an incoming message "
                            f"into uninitialized (garbage) block {b}"
                        ),
                        rank=rank,
                        op=f"recv+reduce{list(op.blocks)}<-{op.peer}",
                    )
                )
                self.state[rank][b] = content
                continue
            if content is None:
                # Garbage payload was already reported at the sender.
                continue
            overlap = local & content
            if overlap and not self.schedule.meta.get("idempotent_only"):
                self.findings.append(
                    Finding(
                        code="dataflow-double-count",
                        severity="error",
                        message=(
                            f"rank {rank} block {b} double-counts "
                            f"contributions {sorted(overlap)} (local "
                            f"{sorted(local)} ∪ incoming {sorted(content)}) "
                            f"— corrupts non-idempotent reductions (SUM)"
                        ),
                        rank=rank,
                        op=f"recv+reduce{list(op.blocks)}<-{op.peer}",
                    )
                )
            self.state[rank][b] = local | content

    def apply_copy(self, rank: int, op: CopyOp) -> None:
        src = self.state[rank][op.src]
        if src is None:
            self.findings.append(
                Finding(
                    code="dataflow-garbage-copy",
                    severity="error",
                    message=(
                        f"rank {rank} copies uninitialized (garbage) "
                        f"block {op.src} into block {op.dst}"
                    ),
                    rank=rank,
                    op=f"copy {op.src}->{op.dst}",
                )
            )
        self.state[rank][op.dst] = src


def _annotate_steps(schedule: Schedule, findings: List[Finding]) -> None:
    # The runner's callbacks don't see step indices; recover them by
    # locating the named op in the rank's program (the first occurrence
    # — repeated identical ops are reported once, at their first site).
    for i, finding in enumerate(findings):
        if finding.rank is None or finding.step is not None or not finding.op:
            continue
        prog = schedule.programs[finding.rank]
        for step_idx, op in prog.iter_ops():
            if _render(op) == finding.op:
                findings[i] = Finding(
                    code=finding.code,
                    severity=finding.severity,
                    message=f"step {step_idx}: {finding.message}",
                    rank=finding.rank,
                    step=step_idx,
                    op=finding.op,
                )
                break


def _render(op) -> str:
    if isinstance(op, SendOp):
        return f"send{list(op.blocks)}->{op.peer}"
    if isinstance(op, RecvOp):
        kind = "recv+reduce" if op.reduce else "recv"
        return f"{kind}{list(op.blocks)}<-{op.peer}"
    return f"copy {op.src}->{op.dst}"


def check_dataflow(schedule: Schedule) -> List[Finding]:
    """Symbolically execute and lint the schedule's dataflow.

    Precondition: the deadlock/channel passes reported no errors (the
    walk reuses the reference runner, which aborts on those).
    """
    model = _LintModel(schedule)
    run_schedule(schedule, model)
    findings = model.findings
    for text in postcondition_errors(schedule, model.state):
        rank: Optional[int] = None
        if text.startswith("rank "):
            try:
                rank = int(text.split()[1])
            except (IndexError, ValueError):
                rank = None
        findings.append(
            Finding(
                code="dataflow-postcondition",
                severity="error",
                message=(
                    f"{schedule.collective} postcondition failed: {text}"
                ),
                rank=rank,
            )
        )
    _annotate_steps(schedule, findings)
    return findings
