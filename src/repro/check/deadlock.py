"""Match-order deadlock detection over the static interpreter.

Three families of findings, all error severity:

``channel-*``
    Structural matching defects visible before any progress question:
    a recv with no send left to match (``channel-starved-recv``, the
    runner's guaranteed hang), a send no recv ever consumes
    (``channel-orphan-send``, the runner's "sent but never received"
    leftover), and matched pairs whose block lists disagree
    (``channel-shape``), which the runner rejects at delivery time.
``deadlock-eager``
    The program cannot finish even with unlimited send buffering — the
    same condition :func:`repro.core.runner.run_schedule` reports as a
    deadlock, found here without executing anything.
``deadlock-rendezvous``
    The program finishes eagerly but hangs once sends must wait for
    their matching recv to be posted — the classic "breaks above the
    eager limit" bug.  The diagnostic walks the wait-for cycle and
    names every (rank, step, op) edge on it.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.schedule import RecvOp, Schedule, SendOp
from .findings import Finding
from .interp import (
    InterpResult,
    Matching,
    OpRef,
    Wait,
    find_cycle,
    interpret,
    match_channels,
    waits_of,
)

__all__ = ["check_channels", "check_deadlock"]


def _op(schedule: Schedule, ref: OpRef):
    return schedule.programs[ref.rank].steps[ref.step].ops[ref.index]


def _op_name(schedule: Schedule, ref: OpRef) -> str:
    op = _op(schedule, ref)
    if isinstance(op, SendOp):
        return f"send{list(op.blocks)}->{op.peer}"
    if isinstance(op, RecvOp):
        kind = "recv+reduce" if op.reduce else "recv"
        return f"{kind}{list(op.blocks)}<-{op.peer}"
    return f"copy {op.src}->{op.dst}"


def check_channels(schedule: Schedule, matching: Matching) -> List[Finding]:
    """Audit the FIFO matching itself: starved recvs, orphan sends,
    and matched pairs whose block lists disagree."""
    findings: List[Finding] = []
    for ref in matching.unmatched_recvs:
        op = _op(schedule, ref)
        findings.append(
            Finding(
                code="channel-starved-recv",
                severity="error",
                message=(
                    f"rank {ref.rank} step {ref.step} posts "
                    f"{_op_name(schedule, ref)} but rank {op.peer} sends "
                    f"fewer messages on this channel than are received — "
                    f"this wait can never be satisfied"
                ),
                rank=ref.rank,
                step=ref.step,
                op=_op_name(schedule, ref),
            )
        )
    for ref in matching.unmatched_sends:
        op = _op(schedule, ref)
        findings.append(
            Finding(
                code="channel-orphan-send",
                severity="error",
                message=(
                    f"rank {ref.rank} step {ref.step} posts "
                    f"{_op_name(schedule, ref)} but rank {op.peer} never "
                    f"receives it — the message would sit in the channel "
                    f"forever (runner reports it as a leftover)"
                ),
                rank=ref.rank,
                step=ref.step,
                op=_op_name(schedule, ref),
            )
        )
    for s_ref, r_ref in sorted(
        matching.send_to_recv.items(),
        key=lambda kv: (kv[0].rank, kv[0].step, kv[0].index),
    ):
        send = _op(schedule, s_ref)
        recv = _op(schedule, r_ref)
        if send.blocks != recv.blocks:
            if len(send.blocks) != len(recv.blocks):
                detail = (
                    f"payload shapes differ: send carries "
                    f"{len(send.blocks)} block(s) {list(send.blocks)}, recv "
                    f"expects {len(recv.blocks)} block(s) {list(recv.blocks)}"
                )
            else:
                detail = (
                    f"block ids differ: send carries {list(send.blocks)}, "
                    f"recv expects {list(recv.blocks)}"
                )
            findings.append(
                Finding(
                    code="channel-shape",
                    severity="error",
                    message=(
                        f"rank {s_ref.rank} step {s_ref.step} "
                        f"{_op_name(schedule, s_ref)} matches rank "
                        f"{r_ref.rank} step {r_ref.step} "
                        f"{_op_name(schedule, r_ref)} (FIFO order) but "
                        f"{detail}"
                    ),
                    rank=r_ref.rank,
                    step=r_ref.step,
                    op=_op_name(schedule, r_ref),
                )
            )
    return findings


def _describe_wait(schedule: Schedule, wait: Wait) -> str:
    waiter = wait.waiter
    head = (
        f"rank {waiter.rank} step {waiter.step} "
        f"{_op_name(schedule, waiter)}"
    )
    if wait.on is None:
        return f"{head} waits on a message that is never sent"
    on = wait.on
    what = "send" if wait.kind == "recv" else "matching recv"
    return (
        f"{head} waits for rank {on.rank} to post its {what} at "
        f"step {on.step} ({_op_name(schedule, on)})"
    )


def _deadlock_finding(
    schedule: Schedule, result: InterpResult, code: str
) -> Finding:
    cycle = find_cycle(schedule, result)
    if cycle:
        hops = " ; ".join(_describe_wait(schedule, w) for w in cycle)
        ranks = [w.waiter.rank for w in cycle]
        first = cycle[0].waiter
        return Finding(
            code=code,
            severity="error",
            message=(
                f"cyclic wait among ranks {ranks} under {result.mode} "
                f"send semantics: {hops} — closing the cycle"
            ),
            rank=first.rank,
            step=first.step,
            op=_op_name(schedule, first),
        )
    # No cycle means the stall chains to an unsatisfiable wait; report
    # the first stuck rank's pending dependency.
    all_waits = waits_of(schedule, result)
    rank = result.stuck[0]
    pending = all_waits.get(rank) or []
    detail = (
        _describe_wait(schedule, pending[0])
        if pending
        else f"rank {rank} is stuck at step {result.pc[rank]}"
    )
    first_ref = pending[0].waiter if pending else None
    return Finding(
        code=code,
        severity="error",
        message=(
            f"ranks {result.stuck} cannot finish under {result.mode} "
            f"send semantics: {detail}"
        ),
        rank=rank,
        step=result.pc[rank],
        op=_op_name(schedule, first_ref) if first_ref else None,
    )


def check_deadlock(
    schedule: Schedule,
    *,
    nbytes: int = 0,
    eager_threshold: Optional[int] = None,
    matching: Optional[Matching] = None,
) -> List[Finding]:
    """Run the eager and rendezvous fixpoints (plus the mixed-threshold
    regime when ``eager_threshold`` is given) and report any hang.

    The eager result subsumes the rendezvous one when it already
    deadlocks — a schedule stuck with unlimited buffering is stuck under
    every semantics, so only the strongest finding is emitted.
    """
    if matching is None:
        matching = match_channels(schedule)
    findings = check_channels(schedule, matching)

    eager = interpret(schedule, matching=matching)
    if eager.deadlocked:
        findings.append(_deadlock_finding(schedule, eager, "deadlock-eager"))
        return findings

    rendezvous = interpret(schedule, eager_threshold=0, matching=matching)
    if rendezvous.deadlocked:
        findings.append(
            _deadlock_finding(schedule, rendezvous, "deadlock-rendezvous")
        )
        if eager_threshold is not None and eager_threshold > 0:
            # Deadlock-freedom is monotone in the threshold (raising it
            # only removes waits), so a rendezvous-clean schedule needs
            # no mixed pass; a rendezvous-stuck one may still complete
            # in the user's regime — say which.
            mixed = interpret(
                schedule,
                eager_threshold=eager_threshold,
                nbytes=nbytes,
                matching=matching,
            )
            if mixed.deadlocked:
                findings.append(
                    _deadlock_finding(schedule, mixed, "deadlock-threshold")
                )
            else:
                findings.append(
                    Finding(
                        code="deadlock-eager-dependent",
                        severity="warning",
                        message=(
                            f"completes at eager threshold "
                            f"{eager_threshold} B (nbytes={nbytes}) only "
                            f"because small payloads buffer eagerly; "
                            f"larger payloads will hang"
                        ),
                    )
                )
    return findings
