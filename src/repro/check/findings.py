"""Finding and report types shared by every lint in :mod:`repro.check`.

A *finding* is one diagnosed problem, pinned to the rank/step/op it was
observed at whenever that location exists (model-level lints are
schedule-wide and carry no rank).  Severities form a strict ladder:

``error``
    A structural bug: the schedule deadlocks, races, loses or corrupts
    data, or contradicts its analytical model beyond the documented
    divergences.  Errors fail ``repro-check`` (exit 1) and the CI gate.
``warning``
    Defined by the IR's step semantics but hazardous on a real
    nonblocking transport (e.g. a receive landing in a block a same-step
    send reads — legal here because sends snapshot at step start,
    a data race under MPI's "don't touch the send buffer until wait"
    rule).  Warnings fail only under ``repro-check --strict``.
``info``
    A note: a canonical idiom worth knowing about (butterfly
    send/reduce-recv overlap needs a staging buffer in a zero-copy
    implementation) or a documented model divergence.  Never fails.

The taxonomy itself — which overlap class lands at which severity and
why — is specified in DESIGN.md §12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["SEVERITIES", "Finding", "CheckReport"]

#: Severity ladder, most severe first.
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One diagnosed problem in a schedule.

    ``code`` is a stable machine-readable identifier (e.g.
    ``deadlock-rendezvous``, ``hazard-write-write``, ``model-rounds``);
    ``message`` is the human diagnosis and always names the offending
    rank/step/op when the finding has a location.
    """

    code: str
    severity: str
    message: str
    rank: Optional[int] = None
    step: Optional[int] = None
    op: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def describe(self) -> str:
        """One-line rendering: ``severity code [rank r step s op]: message``."""
        where = []
        if self.rank is not None:
            where.append(f"rank {self.rank}")
        if self.step is not None:
            where.append(f"step {self.step}")
        if self.op is not None:
            where.append(self.op)
        loc = f" [{', '.join(where)}]" if where else ""
        return f"{self.severity} {self.code}{loc}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering (stable keys, ``None`` fields omitted)."""
        out: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        for key in ("rank", "step", "op"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


def _count(findings: Tuple[Finding, ...], severity: str) -> int:
    return sum(1 for f in findings if f.severity == severity)


@dataclass(frozen=True)
class CheckReport:
    """The outcome of running the static-analysis suite on one schedule.

    ``checks`` names the passes that ran (``deadlock-eager``,
    ``deadlock-rendezvous``, ``hazards``, ``dataflow``, ``model``), so a
    clean report also says what it is clean *of*.  Findings are sorted
    most-severe-first at construction time by :func:`make_report`.
    """

    schedule: str
    fingerprint: str
    nbytes: int
    findings: Tuple[Finding, ...]
    checks: Tuple[str, ...]
    eager_threshold: Optional[int] = None
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def errors(self) -> int:
        """Number of error-severity findings."""
        return _count(self.findings, "error")

    @property
    def warnings(self) -> int:
        """Number of warning-severity findings."""
        return _count(self.findings, "warning")

    @property
    def infos(self) -> int:
        """Number of info-severity findings."""
        return _count(self.findings, "info")

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was produced."""
        return self.errors == 0

    @property
    def strict_ok(self) -> bool:
        """True when no error- or warning-severity finding was produced."""
        return self.errors == 0 and self.warnings == 0

    def describe(self, *, max_findings: int = 20) -> str:
        """Multi-line human summary (verdict line + one line per finding)."""
        verdict = (
            "clean"
            if not self.findings
            else f"{self.errors} error(s), {self.warnings} warning(s), "
            f"{self.infos} note(s)"
        )
        lines = [f"{self.schedule}: {verdict} "
                 f"({', '.join(self.checks)})"]
        for finding in self.findings[:max_findings]:
            lines.append("  " + finding.describe())
        hidden = len(self.findings) - max_findings
        if hidden > 0:
            lines.append(f"  ... and {hidden} more")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering of the full report."""
        return {
            "schedule": self.schedule,
            "fingerprint": self.fingerprint,
            "nbytes": self.nbytes,
            "eager_threshold": self.eager_threshold,
            "checks": list(self.checks),
            "ok": self.ok,
            "errors": self.errors,
            "warnings": self.warnings,
            "infos": self.infos,
            "findings": [f.to_dict() for f in self.findings],
        }


def severity_rank(finding: Finding) -> int:
    """Sort key: most severe first, then location for stable output."""
    return SEVERITIES.index(finding.severity)


def sort_findings(findings) -> Tuple[Finding, ...]:
    """Order findings most-severe-first, then by (rank, step, code)."""
    return tuple(
        sorted(
            findings,
            key=lambda f: (
                severity_rank(f),
                f.rank if f.rank is not None else -1,
                f.step if f.step is not None else -1,
                f.code,
            ),
        )
    )
