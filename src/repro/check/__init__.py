"""repro.check — static analysis of collective schedules (no DES, no data).

The validator (:mod:`repro.core.validate`) proves a schedule computes
the right answer; this package proves it can *run* and that its model
tells the truth, all from the program text alone:

* **deadlock** (:mod:`repro.check.deadlock`) — FIFO channel audit plus
  a progress fixpoint under both eager and rendezvous send semantics,
  reporting the exact wait-for cycle (ranks/steps/ops) on a hang.  A
  schedule clean under rendezvous is deadlock-free at any eager
  threshold.
* **hazards** (:mod:`repro.check.hazards`) — intra-step block-overlap
  races (write-write, read-write, copy hazards), severity-laddered so
  canonical idioms (butterfly send/reduce overlap) inform rather than
  fail.
* **dataflow** (:mod:`repro.check.dataflow`) — contribution-set lint:
  garbage sends/copies, double-counted reductions, postcondition misses,
  reported exhaustively instead of first-failure.
* **model** (:mod:`repro.check.modelcheck`) — the schedule's static
  round count and per-rank byte volume vs. the analytical (α, β) model
  coefficients, with calibrated per-pair divergence bands.

Reports memoize by schedule fingerprint (:mod:`repro.check.cache`), so
sweeps only pay for never-before-seen schedules.  The ``repro-check``
CLI verb (see :mod:`repro.cli`) fronts all of this, and DESIGN.md §12
specifies the semantics in detail.

>>> from repro.core.registry import build_schedule
>>> from repro.check import run_checks
>>> run_checks(build_schedule("allreduce", "ring", 8)).ok
True
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.cache import cached_build_schedule
from ..core.schedule import Schedule
from ..obs import OBS
from .cache import CheckCache, global_check_cache
from .dataflow import check_dataflow
from .deadlock import check_deadlock
from .findings import CheckReport, Finding, SEVERITIES, sort_findings
from .hazards import check_hazards
from .interp import interpret, match_channels
from .modelcheck import KNOWN_DIVERGENCES, check_model, has_model

__all__ = [
    "Finding",
    "CheckReport",
    "SEVERITIES",
    "run_checks",
    "check_schedule",
    "CheckCache",
    "global_check_cache",
    "KNOWN_DIVERGENCES",
]

#: Default payload size the analyses price blocks at (1 MiB): large
#: enough that block rounding is noise for every registry granularity.
DEFAULT_NBYTES = 1 << 20

_ALL_CHECKS = ("channels", "deadlock", "hazards", "dataflow", "model")


def run_checks(
    schedule: Schedule,
    *,
    nbytes: int = DEFAULT_NBYTES,
    eager_threshold: Optional[int] = None,
    model: bool = True,
    cache: Optional[CheckCache] = None,
) -> CheckReport:
    """Run the full static-analysis suite on one schedule.

    ``eager_threshold`` additionally analyzes the mixed send regime
    (payloads ``<= threshold`` bytes eager, larger rendezvous); the
    eager and rendezvous extremes always run.  ``model=False`` skips the
    model-consistency lint (useful for hand-built schedules no registry
    model describes — those are skipped anyway, but the flag also
    silences the report metadata note).

    Results are memoized in ``cache`` (default: the process-global
    :func:`global_check_cache`) under the schedule's content
    fingerprint, so re-checking a seen schedule is a dictionary lookup.
    """
    if cache is None:
        cache = global_check_cache()
    fingerprint = schedule.fingerprint()
    key = (fingerprint, int(nbytes), eager_threshold)
    report, _ = cache.get_or_run(
        key,
        lambda: _analyze(
            schedule,
            fingerprint=fingerprint,
            nbytes=nbytes,
            eager_threshold=eager_threshold,
            model=model,
        ),
    )
    return report


def _analyze(
    schedule: Schedule,
    *,
    fingerprint: str,
    nbytes: int,
    eager_threshold: Optional[int],
    model: bool,
) -> CheckReport:
    findings: List[Finding] = []
    checks: List[str] = ["channels", "deadlock", "hazards"]
    meta = {}

    matching = match_channels(schedule)
    findings.extend(
        check_deadlock(
            schedule,
            nbytes=nbytes,
            eager_threshold=eager_threshold,
            matching=matching,
        )
    )
    findings.extend(check_hazards(schedule))

    # The dataflow and model passes execute/walk the schedule with the
    # reference matching semantics; an unmatched channel or a deadlock
    # makes that walk abort, so they only run on executable schedules.
    executable = not any(f.severity == "error" for f in findings)
    if executable:
        checks.append("dataflow")
        findings.extend(check_dataflow(schedule))
    else:
        meta["skipped"] = ["dataflow"] + (["model"] if model else [])
    if model and executable:
        checks.append("model")
        if has_model(schedule.collective, schedule.algorithm):
            findings.extend(check_model(schedule, nbytes))
        else:
            meta["model"] = "none registered for this pair"

    report = CheckReport(
        schedule=schedule.describe(),
        fingerprint=fingerprint,
        nbytes=int(nbytes),
        findings=sort_findings(findings),
        checks=tuple(checks),
        eager_threshold=eager_threshold,
        meta=meta,
    )
    if OBS.enabled:
        OBS.metrics.counter(
            "repro_check_runs_total",
            outcome="ok" if report.ok else "fail",
        ).inc()
        for finding in report.findings:
            OBS.metrics.counter(
                "repro_check_findings_total",
                code=finding.code,
                severity=finding.severity,
            ).inc()
    return report


def check_schedule(
    collective: str,
    algorithm: str,
    p: int,
    *,
    k: Optional[int] = None,
    root: int = 0,
    nbytes: int = DEFAULT_NBYTES,
    eager_threshold: Optional[int] = None,
) -> CheckReport:
    """Build (cached) and check one registry configuration.

    >>> check_schedule("allreduce", "recursive_multiplying", 16, k=4).ok
    True
    """
    schedule = cached_build_schedule(collective, algorithm, p, k=k, root=root)
    return run_checks(
        schedule, nbytes=nbytes, eager_threshold=eager_threshold
    )
