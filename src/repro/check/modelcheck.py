"""Model-consistency lint: schedules vs. their analytical (α, β) models.

For every registry ``(collective, algorithm)`` pair that has an entry in
:mod:`repro.models`, two structural quantities are extracted *statically*
from the schedule (no DES engine):

* round count — :func:`repro.core.analysis.dependency_rounds`, the
  longest message chain (what α multiplies);
* per-rank byte volume — ``max(max_rank_sent, max_rank_received)`` from
  :func:`repro.core.analysis.volume_profile` (what β multiplies in a
  single-port model).

Each is compared with the model's coefficient, read off by evaluating
:func:`repro.models.model_time` at degenerate parameters
(``ModelParams(1, 0, 0)`` isolates α's multiplier, ``ModelParams(0, 1,
0)`` isolates β's).  The ratio ``static / model`` must fall inside the
pair's expected band.

The bands are *calibrated*, not all 1.0: several of the paper's closed
forms are deliberately optimistic or price a different quantity, and
EXPERIMENTS.md documents the gaps (eq. (8) counts ``p−1`` rounds where
the ring-allreduce schedule runs ``2(p−1)``; the recursive-multiplying
and k-ring allreduce models are 1.2–1.9× optimistic against the
simulator).  :data:`KNOWN_DIVERGENCES` records the empirically measured
band per pair with ~15 % slack and the reason; drifting *outside* the
band — the model was edited without the schedule, or vice versa — is an
error.  Pairs not listed get the exact-model default band.

Barrier models carry no payload term (a barrier moves membership, not
data), so their byte check is skipped; pairs with no model at all are
skipped and noted in the report metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.analysis import dependency_rounds, volume_profile
from ..core.schedule import Schedule
from ..errors import ModelError
from .findings import Finding

__all__ = ["KNOWN_DIVERGENCES", "check_model", "has_model"]


@dataclass(frozen=True)
class _Bounds:
    """Expected ``static / model`` ratio bands for one registry pair."""

    rounds: Tuple[float, float]
    volume: Optional[Tuple[float, float]]
    reason: str = ""


#: Exact-model default: the static quantity must match the coefficient
#: up to block-rounding noise.
_DEFAULT = _Bounds((0.85, 1.18), (0.85, 1.19))

_TREE_ALLREDUCE = (
    "reduce-then-bcast tree phases double the depth the closed form "
    "folds into one log term; leaf ranks move fewer bytes than the "
    "model's uniform per-rank estimate"
)
_RECMUL = (
    "non-power-of-k fold/unfold steps and the (k-1) messages per round "
    "the closed form smooths over (EXPERIMENTS.md: model optimistic "
    "1.2-1.9x vs simulation)"
)
_KRING = (
    "group-phase overlap the closed form prices optimistically "
    "(EXPERIMENTS.md: 1.2-1.9x)"
)

#: Calibrated per-pair ratio bands, with the reason the pair diverges
#: from an exact model. Calibration domain: the CI grid
#: (p ∈ {2..17, 32, 64}, k ∈ {min_k..8}) *and*, for the generalized
#: pairs, the full domain the hypothesis property sweeps
#: (p ∈ {2..24}, every effective radix, every root) — the degenerate
#: corners near k ≈ p−1 sit well outside the small-k grid's ratios
#: (e.g. bcast/kring per-rank volume spans [0.83, 2.63] over the full
#: domain vs [1.19, 2.36] on the k ≤ 8 grid). Bands are measured
#: min/max widened ~15 %; the quantities are deterministic, so the
#: margin only absorbs domain growth, not noise.
KNOWN_DIVERGENCES: Dict[Tuple[str, str], _Bounds] = {
    ("allgather", "binomial"): _Bounds(
        (1.27, 2.36), (0.56, 1.02), _TREE_ALLREDUCE),
    ("allgather", "knomial"): _Bounds(
        (1.27, 2.36), (0.33, 1.02), _TREE_ALLREDUCE),
    ("allgather", "kring"): _Bounds((0.85, 1.18), (0.68, 2.02), _KRING),
    ("allgather", "recursive_doubling"): _Bounds(
        (0.85, 1.77), (0.85, 2.76),
        "non-power-of-two fold/unfold the doubling model omits"),
    ("allgather", "recursive_multiplying"): _Bounds(
        (0.85, 2.88), (0.85, 3.15), _RECMUL),
    ("allreduce", "binomial"): _Bounds(
        (1.27, 2.36), (0.56, 1.02), _TREE_ALLREDUCE),
    ("allreduce", "knomial"): _Bounds(
        (1.27, 2.36), (0.33, 1.02), _TREE_ALLREDUCE),
    ("allreduce", "kring"): _Bounds((1.70, 2.36), (1.24, 3.10), _KRING),
    ("allreduce", "recursive_doubling"): _Bounds(
        (0.85, 1.77), (0.85, 1.18),
        "non-power-of-two fold/unfold rounds the doubling model omits"),
    ("allreduce", "recursive_multiplying"): _Bounds(
        (0.85, 2.88), (0.18, 1.18), _RECMUL),
    ("allreduce", "ring"): _Bounds(
        (1.70, 2.36), (1.70, 2.36),
        "EXPERIMENTS.md: eq. (8) counts p-1 rounds; the schedule runs "
        "the full 2(p-1) (reduce-scatter + allgather), a 2x gap"),
    ("alltoall", "bruck"): _Bounds(
        (0.85, 1.18), (0.43, 1.19),
        "rotation payloads shrink for the last partial digit at "
        "non-power-of-k p; the model prices full digits"),
    ("alltoall", "pairwise"): _Bounds((0.85, 1.18), (0.85, 1.19)),
    ("bcast", "binomial"): _Bounds(
        (0.42, 1.18), (0.85, 1.18),
        "the binomial model prices ceil(log2 p) rounds; subtree sends "
        "off the critical path finish earlier at non-powers"),
    ("bcast", "knomial"): _Bounds(
        (0.42, 1.18), (0.48, 1.18),
        "same log-rounding as bcast/binomial, plus lighter last digits"),
    ("bcast", "kring"): _Bounds((0.91, 2.36), (0.72, 3.02), _KRING),
    ("bcast", "pipelined_chain"): _Bounds(
        (0.85, 1.18), (0.012, 1.18),
        "the chain model prices the critical path ((p+k-2) segments); "
        "per-rank volume stays n, so the ratio shrinks like k/(p+k-2)"),
    ("bcast", "recursive_doubling"): _Bounds(
        (1.41, 2.36), (1.70, 3.94),
        "bcast by doubling = scatter+allgather phases the model halves"),
    ("bcast", "recursive_multiplying"): _Bounds(
        (1.27, 3.54), (1.70, 4.33), _RECMUL),
    ("bcast", "ring"): _Bounds(
        (0.93, 2.36), (1.70, 2.36),
        "eq.-(8)-style round folding, as for allreduce/ring"),
    ("reduce", "knomial"): _Bounds(
        (0.85, 1.18), (0.48, 1.18),
        "non-root subtree ranks move fewer bytes at partial digits"),
    ("barrier", "dissemination"): _Bounds(
        (0.85, 1.18), None, "barrier messages carry no payload term"),
    ("barrier", "k_dissemination"): _Bounds(
        (0.85, 1.18), None, "barrier messages carry no payload term"),
}


def has_model(collective: str, algorithm: str) -> bool:
    """True when :func:`repro.models.model_time` can price this pair."""
    from ..models import _DISPATCH

    return (collective, algorithm) in _DISPATCH


def _effective_radix(schedule: Schedule) -> Optional[int]:
    """The radix the builder actually used, clamped like the builders do.

    A nominal ``k`` beyond :func:`~repro.core.registry.max_radix` (e.g.
    a radix-4 tree on 2 ranks) degenerates the schedule, so the model
    must be priced at the effective radix or the comparison is
    meaningless.
    """
    k = schedule.k
    if k is None:
        return None
    from ..core.registry import _REGISTRY, max_radix

    entry = _REGISTRY.get((schedule.collective, schedule.algorithm))
    if entry is None or not entry.takes_k:
        return k
    return min(
        max(k, entry.min_k),
        max_radix(schedule.collective, schedule.algorithm, schedule.nranks),
    )


def _coefficient(
    collective: str,
    algorithm: str,
    nbytes: int,
    p: int,
    k: Optional[int],
    *,
    alpha: float,
    beta: float,
) -> float:
    from ..models import ModelParams, model_time

    return model_time(
        collective,
        algorithm,
        nbytes,
        p,
        ModelParams(alpha=alpha, beta=beta, gamma=0.0),
        k=k,
    )


def check_model(schedule: Schedule, nbytes: int) -> List[Finding]:
    """Cross-check the schedule's structure against its analytical model.

    Returns an empty list for pairs without a model (noted by the
    orchestrator) and for ``p == 1`` (every quantity degenerates to 0).
    """
    pair = (schedule.collective, schedule.algorithm)
    p = schedule.nranks
    if p <= 1 or not has_model(*pair):
        return []
    findings: List[Finding] = []
    bounds = KNOWN_DIVERGENCES.get(pair, _DEFAULT)
    reason = f" ({bounds.reason})" if bounds.reason else ""
    k = _effective_radix(schedule)

    try:
        model_rounds = _coefficient(
            *pair, nbytes, p, k, alpha=1.0, beta=0.0
        )
    except ModelError as exc:
        return [
            Finding(
                code="model-error",
                severity="error",
                message=f"model evaluation failed for {pair}: {exc}",
            )
        ]
    static_rounds = dependency_rounds(schedule)
    findings.extend(
        _ratio_finding(
            schedule,
            code="model-rounds",
            quantity="round count",
            static=static_rounds,
            model=model_rounds,
            band=bounds.rounds,
            reason=reason,
        )
    )

    # Byte-volume comparison needs blocks big enough that integer block
    # rounding is noise, and a model that actually prices payload.
    if bounds.volume is not None and nbytes >= 64 * schedule.nblocks:
        model_bytes = _coefficient(
            *pair, nbytes, p, k, alpha=0.0, beta=1.0
        )
        profile = volume_profile(schedule, nbytes)
        static_bytes = max(
            profile.max_rank_sent, profile.max_rank_received
        )
        findings.extend(
            _ratio_finding(
                schedule,
                code="model-volume",
                quantity="per-rank byte volume",
                static=static_bytes,
                model=model_bytes,
                band=bounds.volume,
                reason=reason,
            )
        )
    return findings


def _ratio_finding(
    schedule: Schedule,
    *,
    code: str,
    quantity: str,
    static: float,
    model: float,
    band: Tuple[float, float],
    reason: str,
) -> List[Finding]:
    if model <= 0:
        if static <= 0:
            return []
        return [
            Finding(
                code=code,
                severity="error",
                message=(
                    f"{schedule.describe()}: model predicts zero "
                    f"{quantity} but the schedule's is {static}"
                ),
            )
        ]
    ratio = static / model
    lo, hi = band
    if lo <= ratio <= hi:
        return []
    return [
        Finding(
            code=code,
            severity="error",
            message=(
                f"{schedule.describe()}: {quantity} {static:g} vs model "
                f"coefficient {model:g} — ratio {ratio:.3f} outside the "
                f"calibrated band [{lo}, {hi}]{reason}; either the "
                f"schedule builder or the repro.models entry drifted"
            ),
        )
    ]
