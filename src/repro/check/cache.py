"""Fingerprint-keyed memoization of check reports.

Sweeps re-analyze the same schedules constantly (the CI gate alone
visits every registry pair over a (p, k) grid, and the tuner rebuilds
identical points per collective), while the analysis passes are pure
functions of the schedule content plus ``(nbytes, eager_threshold)``.
So reports are cached under
``(Schedule.fingerprint(), nbytes, eager_threshold)`` — the same
content-address contract :class:`~repro.core.cache.ScheduleCache` uses
for builds — and only never-before-seen schedules pay for analysis.

The stats object and the OBS counter names follow the schedule cache's
conventions (``repro_cache_lookups_total{cache="check"}``), so existing
dashboards pick the new cache up without changes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Optional, Tuple

from ..core.cache import CacheStats
from ..errors import ScheduleError
from ..obs import OBS
from .findings import CheckReport

__all__ = ["CheckCache", "global_check_cache"]

#: (schedule fingerprint, nbytes, eager_threshold)
CheckKey = Tuple[str, int, Optional[int]]


class CheckCache:
    """Bounded, thread-safe LRU of :class:`CheckReport` objects."""

    def __init__(self, maxsize: int = 1024, name: str = "check") -> None:
        if maxsize < 1:
            raise ScheduleError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.name = name
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._entries: "OrderedDict[CheckKey, CheckReport]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> CacheStats:
        """Frozen snapshot of the hit/miss/eviction counters."""
        return CacheStats(
            hits=self._hits, misses=self._misses, evictions=self._evictions
        )

    def get_or_run(
        self, key: CheckKey, run: Callable[[], CheckReport]
    ) -> Tuple[CheckReport, bool]:
        """Return ``(report, hit)``, invoking ``run`` once on a miss.

        Reports are immutable (frozen dataclasses over tuples), so the
        cached object is shared between callers, like cached schedules.
        """
        with self._lock:
            report = self._entries.get(key)
            if report is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                if OBS.enabled:
                    OBS.metrics.counter(
                        "repro_cache_lookups_total",
                        cache=self.name,
                        outcome="hit",
                    ).inc()
                return report, True
            self._misses += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_cache_lookups_total", cache=self.name, outcome="miss"
            ).inc()
        # Analyze outside the lock; the passes are pure, so a racing
        # duplicate analysis is wasted work, never a wrong answer.
        report = run()
        evicted = 0
        with self._lock:
            self._entries[key] = report
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted and OBS.enabled:
            OBS.metrics.counter(
                "repro_cache_evictions_total", cache=self.name
            ).inc(evicted)
        return report, False

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0


_GLOBAL = CheckCache()


def global_check_cache() -> CheckCache:
    """The process-global report cache behind ``repro.check.run_checks``.

    Parallel sweep workers each grow their own instance, exactly like
    :func:`repro.core.cache.global_schedule_cache`.
    """
    return _GLOBAL
