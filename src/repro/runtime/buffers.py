"""Buffer setup and reference results for data execution.

A collective on ``p`` ranks over ``count`` total elements uses, per rank, a
working array of ``count`` elements partitioned into the schedule's blocks
(element-granularity :class:`~repro.core.blocks.BlockMap`).  This module
knows, for each collective:

* what the *inputs* look like (full vectors for reduction collectives,
  one block per rank for gather-family, the root's buffer for bcast/scatter),
* how to lay inputs into pre-execution working arrays, with a deterministic
  garbage fill in every slot the collective does not define — so a schedule
  that reads data it was never sent produces loud mismatches rather than
  silently-correct zeros, and
* the NumPy *reference* result (the oracle the executor output is checked
  against).

Message-size convention (matches the paper's cost models): ``count`` is the
**total** buffer size; gather-family ranks each contribute one
``count/p``-sized block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.blocks import BlockMap
from ..core.schedule import Schedule
from ..errors import ExecutionError
from .ops import SUM, ReduceOp

__all__ = [
    "CollectiveData",
    "make_inputs",
    "initial_buffers",
    "reference_result",
    "checked_slots",
    "check_outputs",
]

#: Fill value for undefined buffer slots; chosen to poison reductions and
#: comparisons loudly (NaN would be better for floats but breaks int dtypes).
GARBAGE = -(2**31) + 11


@dataclass
class CollectiveData:
    """Bundle of inputs, working buffers and the reference oracle."""

    collective: str
    count: int
    inputs: List[np.ndarray]
    buffers: List[np.ndarray]
    expected: Dict[int, np.ndarray]  # rank -> full expected buffer


def make_inputs(
    collective: str,
    p: int,
    count: int,
    *,
    dtype: np.dtype = np.dtype(np.int64),
    root: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """Random per-rank input arrays with the right per-collective shapes.

    Reduction inputs are kept small in magnitude so integer sums of
    thousands of ranks cannot overflow and float sums stay exactly
    representable.
    """
    rng = rng or np.random.default_rng(0)
    blocks = BlockMap(count, p)

    def draw(n: int) -> np.ndarray:
        if np.issubdtype(dtype, np.integer):
            return rng.integers(0, 100, size=n).astype(dtype)
        return rng.integers(0, 100, size=n).astype(dtype)  # exact in floats

    if collective in ("bcast", "scatter"):
        return [
            draw(count) if r == root else np.empty(0, dtype=dtype)
            for r in range(p)
        ]
    if collective in ("gather", "allgather"):
        return [draw(blocks.size_of(r)) for r in range(p)]
    if collective in ("reduce", "allreduce", "reduce_scatter"):
        return [draw(count) for r in range(p)]
    if collective == "alltoall":
        # count spans the p² block space; rank r's input is its row.
        row = BlockMap(count, p * p)
        return [
            draw(sum(row.size_of(r * p + d) for d in range(p)))
            for r in range(p)
        ]
    raise ExecutionError(f"unknown collective {collective!r}")


def initial_buffers(
    schedule: Schedule,
    inputs: Sequence[np.ndarray],
    count: int,
    *,
    dtype: np.dtype = np.dtype(np.int64),
) -> List[np.ndarray]:
    """Lay ``inputs`` into per-rank working arrays of ``count`` elements.

    Undefined slots get the :data:`GARBAGE` fill (clipped into the dtype's
    range for narrow types).
    """
    p = schedule.nranks
    coll = schedule.collective
    root = schedule.root
    blocks = BlockMap(count, p)
    garbage = np.array(GARBAGE).astype(dtype)
    bufs = [np.full(count, garbage, dtype=dtype) for _ in range(p)]

    if coll in ("bcast", "scatter"):
        assert root is not None
        if len(inputs[root]) != count:
            raise ExecutionError(
                f"{coll} root input has {len(inputs[root])} elements, "
                f"expected {count}"
            )
        bufs[root][:] = inputs[root]
    elif coll in ("gather", "allgather"):
        for r in range(p):
            start, stop = blocks.range_of(r)
            if len(inputs[r]) != stop - start:
                raise ExecutionError(
                    f"{coll} rank {r} input has {len(inputs[r])} elements, "
                    f"expected block size {stop - start}"
                )
            bufs[r][start:stop] = inputs[r]
    elif coll in ("reduce", "allreduce", "reduce_scatter"):
        for r in range(p):
            if len(inputs[r]) != count:
                raise ExecutionError(
                    f"{coll} rank {r} input has {len(inputs[r])} elements, "
                    f"expected {count}"
                )
            bufs[r][:] = inputs[r]
    elif coll == "alltoall":
        grid = BlockMap(count, p * p)
        for r in range(p):
            pos = 0
            for d in range(p):
                start, stop = grid.range_of(r * p + d)
                size = stop - start
                bufs[r][start:stop] = inputs[r][pos : pos + size]
                pos += size
            if pos != len(inputs[r]):
                raise ExecutionError(
                    f"alltoall rank {r} input has {len(inputs[r])} "
                    f"elements, expected {pos}"
                )
    else:
        raise ExecutionError(f"unknown collective {coll!r}")
    return bufs


def reference_result(
    collective: str,
    inputs: Sequence[np.ndarray],
    count: int,
    *,
    op: ReduceOp = SUM,
    root: int = 0,
) -> Dict[int, np.ndarray]:
    """NumPy oracle: ``rank -> expected full buffer`` for defined ranks.

    Only the ranks the collective defines output for appear as keys (e.g.
    only the root for gather/reduce).
    """
    p = len(inputs)
    blocks = BlockMap(count, p)
    if collective == "bcast":
        return {r: np.asarray(inputs[root]) for r in range(p)}
    if collective == "scatter":
        out = {}
        for r in range(p):
            start, stop = blocks.range_of(r)
            out[r] = np.asarray(inputs[root][start:stop])
        return out
    if collective == "gather":
        return {root: np.concatenate([np.asarray(x) for x in inputs])}
    if collective == "allgather":
        cat = np.concatenate([np.asarray(x) for x in inputs])
        return {r: cat for r in range(p)}
    if collective == "reduce":
        return {root: op.reduce_all(tuple(np.asarray(x) for x in inputs))}
    if collective == "allreduce":
        red = op.reduce_all(tuple(np.asarray(x) for x in inputs))
        return {r: red for r in range(p)}
    if collective == "reduce_scatter":
        red = op.reduce_all(tuple(np.asarray(x) for x in inputs))
        out = {}
        for r in range(p):
            start, stop = blocks.range_of(r)
            out[r] = red[start:stop]
        return out
    if collective == "alltoall":
        # expected[d] = concatenation over sources of block (s, d)
        grid = BlockMap(count, p * p)
        out = {}
        for d in range(p):
            parts = []
            for s in range(p):
                # block (s, d)'s slice within rank s's row-shaped input
                offset = sum(
                    grid.size_of(s * p + dd) for dd in range(d)
                )
                size = grid.size_of(s * p + d)
                parts.append(np.asarray(inputs[s])[offset : offset + size])
            out[d] = np.concatenate(parts) if parts else np.empty(0)
        return out
    raise ExecutionError(f"unknown collective {collective!r}")


def checked_slots(collective: str, p: int, root: int = 0) -> Dict[int, slice]:
    """Which part of each defined rank's buffer the contract constrains.

    * whole buffer for bcast/gather/allgather/reduce/allreduce outputs,
    * rank ``r``'s own block for scatter/reduce_scatter.

    Returned slices index the *expected* array from
    :func:`reference_result`, which is already narrowed for scatter-family.
    """
    if collective in ("bcast", "allgather", "allreduce"):
        return {r: slice(None) for r in range(p)}
    if collective in ("gather", "reduce"):
        return {root: slice(None)}
    if collective in ("scatter", "reduce_scatter", "alltoall"):
        return {r: slice(None) for r in range(p)}
    raise ExecutionError(f"unknown collective {collective!r}")


def check_outputs(
    schedule: Schedule,
    buffers: Sequence[np.ndarray],
    expected: Dict[int, np.ndarray],
    count: int,
    *,
    rtol: float = 0.0,
    atol: float = 0.0,
) -> None:
    """Compare executor output against the oracle; raises on mismatch.

    For scatter-family collectives the comparison is restricted to each
    rank's own block (other slots are unspecified).  Tolerances default to
    exact because the test suite uses integer payloads; float callers pass
    small ``rtol``/``atol`` to absorb reduction-order rounding.
    """
    p = schedule.nranks
    coll = schedule.collective
    blocks = BlockMap(count, p)
    for rank, exp in expected.items():
        if coll in ("scatter", "reduce_scatter"):
            start, stop = blocks.range_of(rank)
            got = buffers[rank][start:stop]
        elif coll == "alltoall":
            grid = BlockMap(count, p * p)
            got = np.concatenate(
                [
                    buffers[rank][slice(*grid.range_of(s * p + rank))]
                    for s in range(p)
                ]
            ) if p else np.empty(0)
        else:
            got = buffers[rank]
        if rtol == 0.0 and atol == 0.0:
            okay = np.array_equal(got, exp)
        else:
            okay = np.allclose(got, exp, rtol=rtol, atol=atol)
        if not okay:
            bad = np.flatnonzero(~np.isclose(got, exp, rtol=rtol, atol=atol))
            where = bad[:5].tolist()
            raise ExecutionError(
                f"{schedule.describe()}: rank {rank} output mismatch at "
                f"elements {where} (got {got[bad[:5]].tolist()}, expected "
                f"{np.asarray(exp)[bad[:5]].tolist()})"
            )
