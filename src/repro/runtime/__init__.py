"""Execution substrates that move real bytes through collective schedules."""

from .buffers import (
    CollectiveData,
    check_outputs,
    checked_slots,
    initial_buffers,
    make_inputs,
    reference_result,
)
from .executor import CollectiveRun, NumpyModel, execute, run_collective
from .session import Comm, Session
from .ops import (
    ALL_OPS,
    BAND,
    BOR,
    BXOR,
    LAND,
    LOR,
    MAX,
    MIN,
    PROD,
    SUM,
    ReduceOp,
    by_name,
)
from .threaded import (
    ThreadedTransport,
    execute_threaded,
    run_collective_threaded,
)

__all__ = [
    "ReduceOp",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "BAND",
    "BOR",
    "BXOR",
    "LAND",
    "LOR",
    "ALL_OPS",
    "by_name",
    "make_inputs",
    "initial_buffers",
    "reference_result",
    "checked_slots",
    "check_outputs",
    "CollectiveData",
    "NumpyModel",
    "execute",
    "run_collective",
    "CollectiveRun",
    "ThreadedTransport",
    "execute_threaded",
    "run_collective_threaded",
    "Session",
    "Comm",
]
