"""Reduction operators for the data executors.

Mirrors the MPI predefined operations the paper's collectives reduce with.
Each operator knows how to combine NumPy arrays (vectorized, in place into
the accumulator, per the HPC guide's "in-place beats reallocation" rule)
and exposes the algebraic properties the validator cares about:
commutativity (all MPI predefined ops commute) and idempotence (MAX/MIN/
BAND/BOR tolerate double-counted contributions; SUM/PROD/BXOR do not —
which is why the symbolic validator rejects overlapping contribution sets
unconditionally: a schedule must be correct for *every* operator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ..errors import ExecutionError

__all__ = [
    "ReduceOp",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "BAND",
    "BOR",
    "BXOR",
    "LAND",
    "LOR",
    "ALL_OPS",
    "by_name",
]


@dataclass(frozen=True)
class ReduceOp:
    """An elementwise, associative, commutative reduction operator.

    Attributes
    ----------
    name:
        MPI-style name (``"sum"``, ``"max"``, ...).
    fn:
        ``fn(acc, incoming)`` combining two arrays elementwise into a new
        or in-place result; executors always call it as
        ``acc[...] = fn(acc, incoming)``.
    idempotent:
        True if ``fn(x, x) == x`` — double-counting is harmless.
    integer_only:
        True for bitwise ops that are undefined on floats.
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    idempotent: bool = False
    integer_only: bool = False

    def apply(self, acc: np.ndarray, incoming: np.ndarray) -> None:
        """Combine ``incoming`` into ``acc`` in place."""
        if acc.shape != incoming.shape:
            raise ExecutionError(
                f"reduce {self.name}: shape mismatch {acc.shape} vs "
                f"{incoming.shape}"
            )
        if self.integer_only and not np.issubdtype(acc.dtype, np.integer):
            raise ExecutionError(
                f"reduce {self.name} is only defined on integer dtypes, "
                f"got {acc.dtype}"
            )
        acc[...] = self.fn(acc, incoming)

    def reduce_all(self, contributions: Tuple[np.ndarray, ...]) -> np.ndarray:
        """Reference reduction over a tuple of arrays, in rank order.

        Used to produce expected results for correctness checks; applies
        left to right so floating-point rounding matches a deterministic
        sequential fold.
        """
        if not contributions:
            raise ExecutionError(f"reduce {self.name}: nothing to reduce")
        acc = contributions[0].copy()
        for arr in contributions[1:]:
            self.apply(acc, arr)
        return acc


SUM = ReduceOp("sum", np.add)
PROD = ReduceOp("prod", np.multiply)
MAX = ReduceOp("max", np.maximum, idempotent=True)
MIN = ReduceOp("min", np.minimum, idempotent=True)
BAND = ReduceOp("band", np.bitwise_and, idempotent=True, integer_only=True)
BOR = ReduceOp("bor", np.bitwise_or, idempotent=True, integer_only=True)
BXOR = ReduceOp("bxor", np.bitwise_xor, integer_only=True)
LAND = ReduceOp(
    "land",
    lambda a, b: (a.astype(bool) & b.astype(bool)).astype(a.dtype),
    idempotent=True,
)
LOR = ReduceOp(
    "lor",
    lambda a, b: (a.astype(bool) | b.astype(bool)).astype(a.dtype),
    idempotent=True,
)

ALL_OPS: Tuple[ReduceOp, ...] = (SUM, PROD, MAX, MIN, BAND, BOR, BXOR, LAND, LOR)

_BY_NAME: Dict[str, ReduceOp] = {op.name: op for op in ALL_OPS}


def by_name(name: str) -> ReduceOp:
    """Look an operator up by its MPI-style name.

    >>> by_name("sum").name
    'sum'
    """
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise ExecutionError(
            f"unknown reduce op {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
