"""Thread-based message-passing transport.

Where :mod:`repro.runtime.executor` runs schedules under a cooperative
progress loop, this module runs them the way an MPI job actually would: one
worker per rank, each independently walking its own program and blocking on
channel receives.  Channels are per-(src, dst) FIFO
:class:`~repro.faults.channel.LossyChannel` objects, so the MPI
non-overtaking rule holds by construction while *everything else* — step
interleaving across ranks, send/receive timing — is at the mercy of the OS
scheduler.  Bugs that a lockstep executor can mask (missing waits, matching
that only works under one interleaving) surface here as mismatched data or
a deadlock timeout.

Resilience: pass a :class:`~repro.faults.plan.FaultPlan` and the transport
becomes a lossy network.  Sends carry sequence numbers and may be dropped
or duplicated per the plan; a monitor daemon retransmits unacked packets
with exponential backoff, so schedules complete *correctly* under injected
loss — or, once a message exhausts its retry budget or a rank crashes,
fail fast with a structured per-rank diagnosis
(:class:`~repro.errors.FaultError` inside a
:class:`~repro.errors.PartialFailure`): which op, which peer, how many
retries.  Never a silent hang — blocked receives poll in short slices, so
an abort anywhere in the job unblocks every rank within ~100 ms.

Python's GIL serializes the NumPy work, but that is irrelevant for what
this transport is for: exercising the *ordering* semantics of schedules
under real asynchrony.  (Timing fidelity is the simulator's job.)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.schedule import CopyOp, RecvOp, Schedule, SendOp
from ..errors import ExecutionError, FaultError, PartialFailure
from ..faults.channel import (
    ChannelAborted,
    ChannelBroken,
    ChannelMonitor,
    ChannelTimeout,
    LossyChannel,
)
from ..faults.plan import FaultPlan
from ..obs import OBS
from .executor import NumpyModel
from .ops import SUM, ReduceOp

__all__ = [
    "ThreadedTransport",
    "execute_threaded",
    "run_collective_threaded",
]


@dataclass
class _RankFailure:
    rank: int
    error: BaseException


class ThreadedTransport:
    """Executes a schedule with one thread per rank.

    Parameters
    ----------
    schedule:
        The collective schedule to run.
    timeout:
        Per-receive timeout in seconds.  A blocked receive exceeding it
        aborts the run with a deadlock diagnosis (a correct schedule on an
        unloaded machine completes receives in microseconds; the default
        leaves three orders of magnitude of headroom).  Receives poll in
        short slices underneath, so a failure elsewhere in the job
        propagates within ~100 ms rather than the full timeout.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan`.  Message drops are
        recovered transparently by ack/retry with exponential backoff (the
        plan's :class:`~repro.faults.plan.RetryPolicy`); exhausted retries
        and rank crashes raise a structured
        :class:`~repro.errors.PartialFailure`.
    detector:
        Optional failure detector (duck-typed to
        :class:`repro.recovery.HeartbeatDetector`): every rank heartbeats
        it as it completes a step, and structured faults are confirmed on
        it before the transport raises — so a recovery loop wrapping this
        transport sees suspicion state, not just the final exception.

    The transport also tracks ``progress`` — per-rank completed-step
    counts — which is the completion state recovery resumes from.
    """

    def __init__(
        self,
        schedule: Schedule,
        *,
        timeout: float = 30.0,
        faults: Optional[FaultPlan] = None,
        detector=None,
    ) -> None:
        self.schedule = schedule
        self.timeout = timeout
        self.faults = faults if faults is not None and faults.is_active else None
        self.detector = detector
        self.progress: List[int] = [0] * schedule.nranks
        self._channels: Dict[Tuple[int, int], LossyChannel] = {}
        self._failures: List[_RankFailure] = []
        self._aborted_ranks: List[int] = []
        self._failure_lock = threading.Lock()
        self._abort = threading.Event()

    def _channel(self, src: int, dst: int) -> LossyChannel:
        # Channels are created up front in run(), so worker threads only
        # ever read this dict — no lock needed on the hot path.
        return self._channels[(src, dst)]

    def run(
        self, buffers: List[np.ndarray], *, op: ReduceOp = SUM
    ) -> List[np.ndarray]:
        """Run the schedule over ``buffers`` (mutated in place)."""
        sched = self.schedule
        if len(buffers) != sched.nranks:
            raise ExecutionError(
                f"need {sched.nranks} buffers, got {len(buffers)}"
            )
        count = len(buffers[0])
        blocks = sched.block_map(count)
        model = NumpyModel(blocks, buffers, op)

        # Pre-create every channel the schedule uses.
        for prog in sched.programs:
            for _, sop in prog.iter_ops():
                if isinstance(sop, SendOp):
                    self._channels.setdefault(
                        (prog.rank, sop.peer),
                        LossyChannel(prog.rank, sop.peer, self.faults),
                    )

        monitor: Optional[ChannelMonitor] = None
        if self.faults is not None and self.faults.has_loss:
            monitor = ChannelMonitor(
                list(self._channels.values()),
                on_failure=lambda failure: self._abort.set(),
            )
            monitor.start()

        threads = [
            threading.Thread(
                target=self._worker,
                args=(rank, model),
                name=f"repro-rank-{rank}",
                daemon=True,
            )
            for rank in range(sched.nranks)
        ]
        span = (
            OBS.span(
                "execute", schedule=sched.describe(), backend="threaded"
            )
            if OBS.enabled
            else None
        )
        if span is not None:
            span.__enter__()
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=self.timeout + 5.0)
                if t.is_alive():
                    self._abort.set()
                    raise ExecutionError(
                        f"{sched.describe()}: thread {t.name} failed to finish"
                    )
        finally:
            if monitor is not None:
                monitor.stop()
            if span is not None:
                span.__exit__(None, None, None)
        if OBS.enabled:
            m = OBS.metrics
            m.counter("repro_executor_runs_total", backend="threaded").inc()
            m.counter(
                "repro_executor_elements_moved_total", backend="threaded"
            ).inc(model.bytes_moved)
        self._raise_failures()
        return buffers

    def _raise_failures(self) -> None:
        """Convert collected per-rank failures into one structured error."""
        sched = self.schedule
        faults = [
            f for f in self._failures if isinstance(f.error, FaultError)
        ]
        # Retry exhaustion detected by the monitor while no rank was
        # blocked on that exact channel: synthesize the diagnosis from the
        # channel's own record so it is never lost.
        reported = {
            (f.error.peer, f.error.rank, f.error.seq) for f in faults
        }
        for ch in self._channels.values():
            failure = ch.failure
            if failure is None:
                continue
            if (failure.src, failure.dst, failure.seq) in reported:
                continue
            faults.append(
                _RankFailure(
                    rank=failure.dst,
                    error=FaultError(
                        failure.describe(),
                        kind="retries_exhausted",
                        rank=failure.dst,
                        peer=failure.src,
                        seq=failure.seq,
                        retries=failure.attempts,
                    ),
                )
            )
        if faults:
            failed = sorted({f.rank for f in faults})
            if self.detector is not None:
                # Confirm the blamed rank on the detector: a crash blames
                # itself, an exhausted retry budget blames the silent
                # peer (ULFM semantics — see repro.recovery.detect).
                now = time.monotonic()
                for f in faults:
                    err = f.error
                    blamed = (
                        err.peer
                        if err.kind == "retries_exhausted"
                        and err.peer is not None
                        else err.rank
                    )
                    if blamed is not None:
                        self.detector.confirm(
                            blamed,
                            kind=err.kind,
                            step=err.step,
                            peer=err.peer,
                            now=now,
                        )
            with self._failure_lock:
                stalled = sorted(
                    set(self._aborted_ranks) - set(failed)
                )
            raise PartialFailure(
                f"{sched.describe()}: rank(s) {failed} failed under "
                f"injected faults ({len(stalled)} peer(s) aborted)",
                failed_ranks=failed,
                stalled_ranks=stalled,
                faults=[f.error for f in faults],  # type: ignore[misc]
            )
        if self._failures:
            first = self._failures[0]
            raise ExecutionError(
                f"{sched.describe()}: rank {first.rank} failed: {first.error}"
            ) from first.error

    def _worker(self, rank: int, model: NumpyModel) -> None:
        faults = self.faults
        crash_at = faults.crash_step(rank) if faults is not None else None
        straggle = 0.0
        if faults is not None:
            straggle = faults.straggler_step_delay * (
                faults.straggler_factor(rank) - 1.0
            )
        try:
            for step_idx, step in enumerate(self.schedule.programs[rank].steps):
                if self._abort.is_set():
                    with self._failure_lock:
                        self._aborted_ranks.append(rank)
                    return
                if crash_at is not None and step_idx == crash_at:
                    raise FaultError(
                        f"rank {rank} crashed before step {step_idx} "
                        f"(injected)",
                        kind="crash",
                        rank=rank,
                        step=step_idx,
                    )
                if straggle > 0.0:
                    time.sleep(straggle)
                # Post phase: snapshot + enqueue all sends, apply copies.
                for sop in step.ops:
                    if isinstance(sop, SendOp):
                        self._channel(rank, sop.peer).send(
                            model.snapshot(rank, sop)
                        )
                for sop in step.ops:
                    if isinstance(sop, CopyOp):
                        model.apply_copy(rank, sop)
                # Wait phase: drain receives in op order (FIFO per channel).
                for sop in step.ops:
                    if isinstance(sop, RecvOp):
                        payload = self._recv(rank, step_idx, sop)
                        if payload is None:
                            return  # aborted: primary failure is elsewhere
                        model.apply_recv(rank, sop, payload)
                self.progress[rank] = step_idx + 1
                if self.detector is not None:
                    self.detector.heartbeat(
                        rank, time.monotonic(), step=step_idx
                    )
        except BaseException as exc:  # propagate to run()
            with self._failure_lock:
                self._failures.append(_RankFailure(rank=rank, error=exc))
            self._abort.set()

    def _recv(self, rank: int, step_idx: int, sop: RecvOp):
        """One receive with sliced polling and structured failure modes.

        Returns the payload, or ``None`` when the run was aborted by a
        failure on another rank (the worker then exits quietly — the
        primary diagnosis is already recorded).
        """
        try:
            channel = self._channel(sop.peer, rank)
        except KeyError:
            raise ExecutionError(
                f"rank {rank} step {step_idx}: no channel "
                f"{sop.peer}->{rank} exists (receive with "
                f"no matching send)"
            ) from None
        try:
            return channel.recv(self.timeout, abort=self._abort)
        except ChannelTimeout:
            raise ExecutionError(
                f"rank {rank} step {step_idx}: timed out "
                f"waiting for blocks {list(sop.blocks)} "
                f"from rank {sop.peer}"
            ) from None
        except ChannelBroken as broken:
            raise FaultError(
                f"rank {rank} step {step_idx}: {broken.failure.describe()}",
                kind="retries_exhausted",
                rank=rank,
                step=step_idx,
                peer=sop.peer,
                seq=broken.failure.seq,
                retries=broken.failure.attempts,
            ) from None
        except ChannelAborted:
            with self._failure_lock:
                self._aborted_ranks.append(rank)
            return None

    def leftover_messages(self) -> int:
        """Messages sent but never received (0 for a matched schedule)."""
        return sum(ch.undelivered() for ch in self._channels.values())


def execute_threaded(
    schedule: Schedule,
    buffers: List[np.ndarray],
    *,
    op: ReduceOp = SUM,
    timeout: float = 30.0,
    faults: Optional[FaultPlan] = None,
    detector=None,
) -> List[np.ndarray]:
    """Convenience wrapper: run ``schedule`` on a fresh threaded transport
    and verify no messages were left unconsumed."""
    transport = ThreadedTransport(
        schedule, timeout=timeout, faults=faults, detector=detector
    )
    transport.run(buffers, op=op)
    leftovers = transport.leftover_messages()
    if leftovers:
        raise ExecutionError(
            f"{schedule.describe()}: {leftovers} message(s) sent but never "
            f"received"
        )
    return buffers


def run_collective_threaded(
    collective: str,
    algorithm: str,
    p: int,
    count: int,
    *,
    k: Optional[int] = None,
    root: int = 0,
    op: ReduceOp = SUM,
    seed: int = 0,
    timeout: float = 30.0,
    faults: Optional[FaultPlan] = None,
    check: bool = True,
) -> List[np.ndarray]:
    """End-to-end: build a schedule, run it over real threads on random
    data, and check the result against the NumPy reference.

    The threaded counterpart of
    :func:`repro.runtime.executor.run_collective`, and the one-call way to
    exercise a :class:`~repro.faults.plan.FaultPlan`: injected loss is
    recovered by ack/retry (results stay element-exact), unmaskable
    faults raise a structured :class:`~repro.errors.PartialFailure`.
    """
    from ..core.registry import build_schedule
    from .buffers import (
        check_outputs,
        initial_buffers,
        make_inputs,
        reference_result,
    )

    schedule = build_schedule(collective, algorithm, p, k=k, root=root)
    rng = np.random.default_rng(seed)
    inputs = make_inputs(collective, p, count, root=root, rng=rng)
    buffers = initial_buffers(schedule, inputs, count)
    execute_threaded(
        schedule, buffers, op=op, timeout=timeout, faults=faults
    )
    if check:
        expected = reference_result(collective, inputs, count, op=op,
                                    root=root)
        check_outputs(schedule, buffers, expected, count)
    return buffers
