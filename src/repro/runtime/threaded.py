"""Thread-based message-passing transport.

Where :mod:`repro.runtime.executor` runs schedules under a cooperative
progress loop, this module runs them the way an MPI job actually would: one
worker per rank, each independently walking its own program and blocking on
channel receives.  Channels are per-(src, dst) FIFO
:class:`~repro.faults.channel.LossyChannel` objects, so the MPI
non-overtaking rule holds by construction while *everything else* — step
interleaving across ranks, send/receive timing — is at the mercy of the OS
scheduler.  Bugs that a lockstep executor can mask (missing waits, matching
that only works under one interleaving) surface here as mismatched data or
a deadlock timeout.

Resilience: pass a :class:`~repro.faults.plan.FaultPlan` and the transport
becomes a lossy network.  Sends carry sequence numbers and may be dropped
or duplicated per the plan; a monitor daemon retransmits unacked packets
with exponential backoff, so schedules complete *correctly* under injected
loss — or, once a message exhausts its retry budget or a rank crashes,
fail fast with a structured per-rank diagnosis
(:class:`~repro.errors.FaultError` inside a
:class:`~repro.errors.PartialFailure`): which op, which peer, how many
retries.  Never a silent hang — blocked receives poll in short slices, so
an abort anywhere in the job unblocks every rank within ~100 ms.

Python's GIL serializes the NumPy work, but that is irrelevant for what
this transport is for: exercising the *ordering* semantics of schedules
under real asynchrony.  (Timing fidelity is the simulator's job.)

Compiled execution (``compiled=True``, the default) runs the same rank
workers over preresolved :class:`~repro.compile.program.BoundSchedule`
action tuples instead of interpreting the IR per op.  On the fault-free,
detector-free path the transport additionally uses fused step boundaries,
lean counter-only channels, a persistent worker-thread pool (thread spawn
costs ~20× a pool dispatch here), and recycled staging buffers — the
levers behind the interpreter-vs-compiled perf gate.  Under a fault plan
or a detector it keeps the *raw* step boundaries and the full lossy
channel machinery, so crash step indexing, heartbeats, retry budgets, and
abort semantics are untouched; results are bit-identical either way
(pinned by the differential suite).
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..compile.runner import _apply_recv as _fast_apply
from ..compile.runner import _gather
from ..core.schedule import CopyOp, RecvOp, Schedule, SendOp
from ..errors import ExecutionError, FaultError, PartialFailure
from ..faults.channel import (
    POLL_SLICE,
    ChannelAborted,
    ChannelBroken,
    ChannelMonitor,
    ChannelTimeout,
    LossyChannel,
)
from ..faults.plan import FaultPlan
from ..obs import OBS
from .executor import NumpyModel
from .ops import SUM, ReduceOp

__all__ = [
    "ThreadedTransport",
    "execute_threaded",
    "run_collective_threaded",
]


@dataclass
class _RankFailure:
    rank: int
    error: BaseException


class _FastChannel:
    """Minimal FIFO channel for the fault-free compiled path.

    A :class:`queue.SimpleQueue` plus sent/received counters (each has a
    single writer: the one producer rank, the one consumer rank).  The
    blocking receive wakes the instant a payload arrives; the poll slices
    only bound how fast an abort elsewhere in the job unblocks this rank
    — the same responsiveness contract as the lossy channel.
    """

    __slots__ = ("_q", "sent", "received")

    def __init__(self) -> None:
        self._q: "queue.SimpleQueue" = queue.SimpleQueue()
        self.sent = 0
        self.received = 0

    def send(self, payload: np.ndarray) -> None:
        """Enqueue one payload (counted)."""
        self.sent += 1
        self._q.put(payload)

    def recv(self, timeout: float, abort: threading.Event):
        """Next payload in FIFO order.

        Returns ``None`` when the run aborted while waiting; raises
        :class:`~repro.faults.channel.ChannelTimeout` after ``timeout``
        seconds with no message (a deadlocked schedule).
        """
        try:
            payload = self._q.get_nowait()
        except queue.Empty:
            deadline = time.monotonic() + timeout
            while True:
                try:
                    payload = self._q.get(timeout=POLL_SLICE)
                    break
                except queue.Empty:
                    if abort.is_set():
                        return None
                    if time.monotonic() >= deadline:
                        raise ChannelTimeout() from None
        self.received += 1
        return payload

    def undelivered(self) -> int:
        """Messages sent but not (yet) received."""
        return self.sent - self.received


class _WorkerPool:
    """Persistent daemon rank-workers, reused across compiled runs.

    Spawning a thread costs ~0.4–0.7 ms on this interpreter; dispatching
    to a parked pool worker ~0.03 ms.  Small-message collectives finish
    in well under a millisecond of actual work, so the pool is the single
    biggest lever behind the compiled threaded speedup.  Tasks are
    self-catching closures (the transport records failures itself); the
    pool only signals completion.  A pool that misses its deadline is
    marked dead and abandoned — its parked threads are daemons — and the
    next run builds a fresh one, so a wedged task can never poison later
    runs.  Fork safety: the singleton is keyed by pid.
    """

    def __init__(self) -> None:
        self.pid = os.getpid()
        self.dead = False
        self.lock = threading.Lock()
        self._inboxes: List["queue.SimpleQueue"] = []
        self._threads: List[threading.Thread] = []
        self._done: "queue.SimpleQueue" = queue.SimpleQueue()

    def ensure(self, n: int) -> None:
        """Grow the pool to at least ``n`` parked workers."""
        while len(self._threads) < n:
            inbox: "queue.SimpleQueue" = queue.SimpleQueue()
            t = threading.Thread(
                target=self._loop,
                args=(inbox,),
                name=f"repro-pool-{len(self._threads)}",
                daemon=True,
            )
            self._inboxes.append(inbox)
            self._threads.append(t)
            t.start()

    def _loop(self, inbox: "queue.SimpleQueue") -> None:
        while True:
            fn = inbox.get()
            try:
                fn()
            finally:
                self._done.put(None)

    def run(self, fns, timeout: float) -> bool:
        """Run ``fns`` (one per worker) to completion; ``False`` on stall.

        Caller must hold :attr:`lock` (taken by the transport so nested
        or concurrent dispatches are impossible by construction).
        """
        for i, fn in enumerate(fns):
            self._inboxes[i].put(fn)
        deadline = time.monotonic() + timeout
        done = 0
        while done < len(fns):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.dead = True
                return False
            try:
                self._done.get(timeout=remaining)
            except queue.Empty:
                self.dead = True
                return False
            done += 1
        return True


_POOL: Optional[_WorkerPool] = None
_POOL_GUARD = threading.Lock()


def _worker_pool(n: int) -> _WorkerPool:
    """The process-global pool, grown to ``n`` workers (pid-checked)."""
    global _POOL
    with _POOL_GUARD:
        if _POOL is None or _POOL.dead or _POOL.pid != os.getpid():
            _POOL = _WorkerPool()
        _POOL.ensure(n)
        return _POOL


class ThreadedTransport:
    """Executes a schedule with one thread per rank.

    Parameters
    ----------
    schedule:
        The collective schedule to run.
    timeout:
        Per-receive timeout in seconds.  A blocked receive exceeding it
        aborts the run with a deadlock diagnosis (a correct schedule on an
        unloaded machine completes receives in microseconds; the default
        leaves three orders of magnitude of headroom).  Receives poll in
        short slices underneath, so a failure elsewhere in the job
        propagates within ~100 ms rather than the full timeout.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan`.  Message drops are
        recovered transparently by ack/retry with exponential backoff (the
        plan's :class:`~repro.faults.plan.RetryPolicy`); exhausted retries
        and rank crashes raise a structured
        :class:`~repro.errors.PartialFailure`.
    detector:
        Optional failure detector (duck-typed to
        :class:`repro.recovery.HeartbeatDetector`): every rank heartbeats
        it as it completes a step, and structured faults are confirmed on
        it before the transport raises — so a recovery loop wrapping this
        transport sees suspicion state, not just the final exception.
    compiled:
        Run the compiled program tables (:mod:`repro.compile`) instead of
        interpreting the IR per op (default ``True``; bit-identical, see
        the module docstring).  ``False`` is the escape hatch.

    The transport also tracks ``progress`` — per-rank completed-step
    counts in the *schedule's* (raw) step numbering, whichever execution
    mode ran — which is the completion state recovery resumes from.
    """

    def __init__(
        self,
        schedule: Schedule,
        *,
        timeout: float = 30.0,
        faults: Optional[FaultPlan] = None,
        detector=None,
        compiled: bool = True,
    ) -> None:
        self.schedule = schedule
        self.timeout = timeout
        self.faults = faults if faults is not None and faults.is_active else None
        self.detector = detector
        self.compiled = compiled
        self.progress: List[int] = [0] * schedule.nranks
        self._channels: Dict[Tuple[int, int], LossyChannel] = {}
        self._fast_channels: Dict[Tuple[int, int], _FastChannel] = {}
        self._failures: List[_RankFailure] = []
        self._aborted_ranks: List[int] = []
        self._failure_lock = threading.Lock()
        self._abort = threading.Event()
        self._moved: List[int] = [0] * schedule.nranks

    def _channel(self, src: int, dst: int) -> LossyChannel:
        # Channels are created up front in run(), so worker threads only
        # ever read this dict — no lock needed on the hot path.
        return self._channels[(src, dst)]

    def run(
        self, buffers: List[np.ndarray], *, op: ReduceOp = SUM
    ) -> List[np.ndarray]:
        """Run the schedule over ``buffers`` (mutated in place)."""
        sched = self.schedule
        if len(buffers) != sched.nranks:
            raise ExecutionError(
                f"need {sched.nranks} buffers, got {len(buffers)}"
            )
        count = len(buffers[0])
        blocks = sched.block_map(count)
        if self.compiled:
            from ..compile import get_or_compile

            bound = get_or_compile(sched).bind(blocks)
            if self.faults is None and self.detector is None:
                return self._run_fast(bound, buffers, op)
            return self._run_channels(buffers, op, blocks, bound=bound)
        return self._run_channels(buffers, op, blocks, bound=None)

    def _run_channels(
        self,
        buffers: List[np.ndarray],
        op: ReduceOp,
        blocks,
        *,
        bound,
    ) -> List[np.ndarray]:
        """Full lossy-channel execution (interpreted or compiled tables).

        With ``bound`` the workers walk the compiled raw-step action
        tuples; without it they interpret the IR.  Everything else —
        channel creation, fault monitor, failure collection, detector
        integration — is shared, so the fault surface cannot drift
        between the two modes.
        """
        sched = self.schedule
        model = NumpyModel(blocks, buffers, op)

        # Pre-create every channel the schedule uses.
        for prog in sched.programs:
            for _, sop in prog.iter_ops():
                if isinstance(sop, SendOp):
                    self._channels.setdefault(
                        (prog.rank, sop.peer),
                        LossyChannel(prog.rank, sop.peer, self.faults),
                    )

        monitor: Optional[ChannelMonitor] = None
        if self.faults is not None and self.faults.has_loss:
            monitor = ChannelMonitor(
                list(self._channels.values()),
                on_failure=lambda failure: self._abort.set(),
            )
            monitor.start()

        if bound is not None:
            workers = [
                (lambda rank=rank: self._compiled_worker(
                    rank, bound, buffers, op, model
                ))
                for rank in range(sched.nranks)
            ]
        else:
            workers = [
                (lambda rank=rank: self._worker(rank, model))
                for rank in range(sched.nranks)
            ]
        threads = [
            threading.Thread(
                target=workers[rank],
                name=f"repro-rank-{rank}",
                daemon=True,
            )
            for rank in range(sched.nranks)
        ]
        span = (
            OBS.span(
                "execute", schedule=sched.describe(), backend="threaded",
                compiled=bound is not None,
            )
            if OBS.enabled
            else None
        )
        if span is not None:
            span.__enter__()
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=self.timeout + 5.0)
                if t.is_alive():
                    self._abort.set()
                    raise ExecutionError(
                        f"{sched.describe()}: thread {t.name} failed to finish"
                    )
        finally:
            if monitor is not None:
                monitor.stop()
            if span is not None:
                span.__exit__(None, None, None)
        moved = model.bytes_moved if bound is None else sum(self._moved)
        if OBS.enabled:
            m = OBS.metrics
            m.counter("repro_executor_runs_total", backend="threaded").inc()
            m.counter(
                "repro_executor_elements_moved_total", backend="threaded"
            ).inc(moved)
        self._raise_failures()
        return buffers

    def _run_fast(
        self, bound, buffers: List[np.ndarray], op: ReduceOp
    ) -> List[np.ndarray]:
        """Fault-free compiled execution: fused steps, pool, staging.

        Only reachable with no fault plan and no detector, so channels
        need no loss/ack/retry machinery and staging buffers can be
        recycled (a lossy channel's duplicate would alias a recycled
        payload; here every payload has exactly one consumer).
        """
        sched = self.schedule
        for rank, rank_steps in enumerate(bound.steps):
            for sends, _, _ in rank_steps:
                for peer, _, _ in sends:
                    self._fast_channels.setdefault(
                        (rank, peer), _FastChannel()
                    )
        pool_bufs = bound.staging_pool(buffers[0].dtype)
        workers = [
            (lambda rank=rank: self._fast_worker(
                rank, bound, buffers, op, pool_bufs
            ))
            for rank in range(sched.nranks)
        ]
        span = (
            OBS.span(
                "execute", schedule=sched.describe(), backend="threaded",
                compiled=True,
            )
            if OBS.enabled
            else None
        )
        if span is not None:
            span.__enter__()
        try:
            finished = self._dispatch_fast(workers)
            if not finished:
                self._abort.set()
                raise ExecutionError(
                    f"{sched.describe()}: compiled worker(s) failed to "
                    f"finish"
                )
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        if OBS.enabled:
            m = OBS.metrics
            m.counter("repro_executor_runs_total", backend="threaded").inc()
            m.counter(
                "repro_executor_elements_moved_total", backend="threaded"
            ).inc(sum(self._moved))
        self._raise_failures()
        return buffers

    def _dispatch_fast(self, workers) -> bool:
        """Run rank workers via the persistent pool (or fresh threads).

        The pool is only used from the main thread with the pool lock
        free — a transport running *inside* a pool worker (or two
        transports racing) falls back to spawning threads, so pool
        dispatch can never deadlock on itself.
        """
        budget = self.timeout + 5.0
        if threading.current_thread() is threading.main_thread():
            pool = _worker_pool(len(workers))
            if pool.lock.acquire(blocking=False):
                try:
                    return pool.run(workers, budget)
                finally:
                    pool.lock.release()
        threads = [
            threading.Thread(target=fn, name=f"repro-rank-{rank}",
                             daemon=True)
            for rank, fn in enumerate(workers)
        ]
        for t in threads:
            t.start()
        deadline = time.monotonic() + budget
        for t in threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
            if t.is_alive():
                return False
        return True

    def _raise_failures(self) -> None:
        """Convert collected per-rank failures into one structured error."""
        sched = self.schedule
        faults = [
            f for f in self._failures if isinstance(f.error, FaultError)
        ]
        # Retry exhaustion detected by the monitor while no rank was
        # blocked on that exact channel: synthesize the diagnosis from the
        # channel's own record so it is never lost.
        reported = {
            (f.error.peer, f.error.rank, f.error.seq) for f in faults
        }
        for ch in self._channels.values():
            failure = ch.failure
            if failure is None:
                continue
            if (failure.src, failure.dst, failure.seq) in reported:
                continue
            faults.append(
                _RankFailure(
                    rank=failure.dst,
                    error=FaultError(
                        failure.describe(),
                        kind="retries_exhausted",
                        rank=failure.dst,
                        peer=failure.src,
                        seq=failure.seq,
                        retries=failure.attempts,
                    ),
                )
            )
        if faults:
            failed = sorted({f.rank for f in faults})
            if self.detector is not None:
                # Confirm the blamed rank on the detector: a crash blames
                # itself, an exhausted retry budget blames the silent
                # peer (ULFM semantics — see repro.recovery.detect).
                now = time.monotonic()
                for f in faults:
                    err = f.error
                    blamed = (
                        err.peer
                        if err.kind == "retries_exhausted"
                        and err.peer is not None
                        else err.rank
                    )
                    if blamed is not None:
                        self.detector.confirm(
                            blamed,
                            kind=err.kind,
                            step=err.step,
                            peer=err.peer,
                            now=now,
                        )
            with self._failure_lock:
                stalled = sorted(
                    set(self._aborted_ranks) - set(failed)
                )
            raise PartialFailure(
                f"{sched.describe()}: rank(s) {failed} failed under "
                f"injected faults ({len(stalled)} peer(s) aborted)",
                failed_ranks=failed,
                stalled_ranks=stalled,
                faults=[f.error for f in faults],  # type: ignore[misc]
            )
        if self._failures:
            first = self._failures[0]
            raise ExecutionError(
                f"{sched.describe()}: rank {first.rank} failed: {first.error}"
            ) from first.error

    def _worker(self, rank: int, model: NumpyModel) -> None:
        faults = self.faults
        crash_at = faults.crash_step(rank) if faults is not None else None
        straggle = 0.0
        if faults is not None:
            straggle = faults.straggler_step_delay * (
                faults.straggler_factor(rank) - 1.0
            )
        try:
            for step_idx, step in enumerate(self.schedule.programs[rank].steps):
                if self._abort.is_set():
                    with self._failure_lock:
                        self._aborted_ranks.append(rank)
                    return
                if crash_at is not None and step_idx == crash_at:
                    raise FaultError(
                        f"rank {rank} crashed before step {step_idx} "
                        f"(injected)",
                        kind="crash",
                        rank=rank,
                        step=step_idx,
                    )
                if straggle > 0.0:
                    time.sleep(straggle)
                # Post phase: snapshot + enqueue all sends, apply copies.
                for sop in step.ops:
                    if isinstance(sop, SendOp):
                        self._channel(rank, sop.peer).send(
                            model.snapshot(rank, sop)
                        )
                for sop in step.ops:
                    if isinstance(sop, CopyOp):
                        model.apply_copy(rank, sop)
                # Wait phase: drain receives in op order (FIFO per channel).
                for sop in step.ops:
                    if isinstance(sop, RecvOp):
                        payload = self._recv(
                            rank, step_idx, sop.peer, sop.blocks
                        )
                        if payload is None:
                            return  # aborted: primary failure is elsewhere
                        model.apply_recv(rank, sop, payload)
                self.progress[rank] = step_idx + 1
                if self.detector is not None:
                    self.detector.heartbeat(
                        rank, time.monotonic(), step=step_idx
                    )
        except BaseException as exc:  # propagate to run()
            with self._failure_lock:
                self._failures.append(_RankFailure(rank=rank, error=exc))
            self._abort.set()

    def _compiled_worker(
        self, rank: int, bound, buffers: List[np.ndarray], op: ReduceOp,
        model: NumpyModel,
    ) -> None:
        """One rank over compiled *raw*-step tuples with lossy channels.

        The compiled twin of :meth:`_worker`: identical step indexing
        (crash injection, progress, heartbeats), identical channel and
        failure machinery, but the per-op work walks preresolved action
        tuples.  Payloads are always fresh arrays here — a lossy
        channel's duplicate delivery aliases the payload object, so
        staging recycling is illegal under faults.
        """
        faults = self.faults
        crash_at = faults.crash_step(rank) if faults is not None else None
        straggle = 0.0
        if faults is not None:
            straggle = faults.straggler_step_delay * (
                faults.straggler_factor(rank) - 1.0
            )
        buf = buffers[rank]
        try:
            for step_idx, (sends, copies, recvs) in enumerate(
                bound.raw_steps[rank]
            ):
                if self._abort.is_set():
                    with self._failure_lock:
                        self._aborted_ranks.append(rank)
                    return
                if crash_at is not None and step_idx == crash_at:
                    raise FaultError(
                        f"rank {rank} crashed before step {step_idx} "
                        f"(injected)",
                        kind="crash",
                        rank=rank,
                        step=step_idx,
                    )
                if straggle > 0.0:
                    time.sleep(straggle)
                for peer, ranges, total in sends:
                    self._channel(rank, peer).send(
                        _gather(buf, ranges, total)
                    )
                    self._moved[rank] += total
                for s0, s1, d0, d1 in copies:
                    buf[d0:d1] = buf[s0:s1]
                for peer, reduce, ranges, total, blocks, mismatch in recvs:
                    payload = self._recv(rank, step_idx, peer, blocks)
                    if payload is None:
                        return  # aborted: primary failure is elsewhere
                    _fast_apply(
                        buf, payload, ranges, total, reduce, op, rank, blocks
                    )
                self.progress[rank] = step_idx + 1
                if self.detector is not None:
                    self.detector.heartbeat(
                        rank, time.monotonic(), step=step_idx
                    )
        except BaseException as exc:  # propagate to run()
            with self._failure_lock:
                self._failures.append(_RankFailure(rank=rank, error=exc))
            self._abort.set()

    def _fast_worker(
        self, rank: int, bound, buffers: List[np.ndarray], op: ReduceOp,
        pool_bufs,
    ) -> None:
        """One rank over compiled *fused*-step tuples, recycling staging.

        The hot loop: counter-only channels, payload buffers acquired
        from (and, once fully consumed, released back to) the shared
        :class:`~repro.compile.program.StagingPool`.  Progress is
        reported in raw-step numbering via the bound fused→raw map.
        """
        steps = bound.steps[rank]
        fused_raw = bound.fused_raw[rank]
        buf = buffers[rank]
        channels = self._fast_channels
        timeout = self.timeout
        abort = self._abort
        try:
            for step_idx, (sends, copies, recvs) in enumerate(steps):
                if abort.is_set():
                    with self._failure_lock:
                        self._aborted_ranks.append(rank)
                    return
                for peer, ranges, total in sends:
                    payload = pool_bufs.acquire(total)
                    pos = 0
                    for a, b in ranges:
                        n = b - a
                        payload[pos:pos + n] = buf[a:b]
                        pos += n
                    channels[(rank, peer)].send(payload)
                    self._moved[rank] += total
                for s0, s1, d0, d1 in copies:
                    buf[d0:d1] = buf[s0:s1]
                for peer, reduce, ranges, total, blocks, mismatch in recvs:
                    ch = channels.get((peer, rank))
                    if ch is None:
                        raise ExecutionError(
                            f"rank {rank} step {step_idx}: no channel "
                            f"{peer}->{rank} exists (receive with "
                            f"no matching send)"
                        )
                    try:
                        payload = ch.recv(timeout, abort)
                    except ChannelTimeout:
                        raise ExecutionError(
                            f"rank {rank} step {step_idx}: timed out "
                            f"waiting for blocks {list(blocks)} "
                            f"from rank {peer}"
                        ) from None
                    if payload is None:
                        with self._failure_lock:
                            self._aborted_ranks.append(rank)
                        return
                    if mismatch is not None:
                        raise ExecutionError(
                            f"{bound.describe_str}: rank {rank} step "
                            f"{step_idx} expected blocks {mismatch[1]} "
                            f"from rank {peer} but the in-flight message "
                            f"carries {mismatch[0]}"
                        )
                    _fast_apply(buf, payload, ranges, total, reduce, op,
                                rank, blocks)
                    pool_bufs.release(payload)
                self.progress[rank] = fused_raw[step_idx]
        except BaseException as exc:  # propagate to run()
            with self._failure_lock:
                self._failures.append(_RankFailure(rank=rank, error=exc))
            self._abort.set()

    def _recv(self, rank: int, step_idx: int, peer: int, blocks):
        """One receive with sliced polling and structured failure modes.

        Returns the payload, or ``None`` when the run was aborted by a
        failure on another rank (the worker then exits quietly — the
        primary diagnosis is already recorded).  ``blocks`` is only for
        diagnostics, so the interpreted and compiled workers share this
        path verbatim.
        """
        try:
            channel = self._channel(peer, rank)
        except KeyError:
            raise ExecutionError(
                f"rank {rank} step {step_idx}: no channel "
                f"{peer}->{rank} exists (receive with "
                f"no matching send)"
            ) from None
        try:
            return channel.recv(self.timeout, abort=self._abort)
        except ChannelTimeout:
            raise ExecutionError(
                f"rank {rank} step {step_idx}: timed out "
                f"waiting for blocks {list(blocks)} "
                f"from rank {peer}"
            ) from None
        except ChannelBroken as broken:
            raise FaultError(
                f"rank {rank} step {step_idx}: {broken.failure.describe()}",
                kind="retries_exhausted",
                rank=rank,
                step=step_idx,
                peer=peer,
                seq=broken.failure.seq,
                retries=broken.failure.attempts,
            ) from None
        except ChannelAborted:
            with self._failure_lock:
                self._aborted_ranks.append(rank)
            return None

    def leftover_messages(self) -> int:
        """Messages sent but never received (0 for a matched schedule)."""
        return sum(ch.undelivered() for ch in self._channels.values()) + sum(
            ch.undelivered() for ch in self._fast_channels.values()
        )


def execute_threaded(
    schedule: Schedule,
    buffers: List[np.ndarray],
    *,
    op: ReduceOp = SUM,
    timeout: float = 30.0,
    faults: Optional[FaultPlan] = None,
    detector=None,
    compiled: bool = True,
) -> List[np.ndarray]:
    """Convenience wrapper: run ``schedule`` on a fresh threaded transport
    and verify no messages were left unconsumed.  ``compiled=False``
    forces op-by-op IR interpretation (see
    :class:`ThreadedTransport`)."""
    transport = ThreadedTransport(
        schedule, timeout=timeout, faults=faults, detector=detector,
        compiled=compiled,
    )
    transport.run(buffers, op=op)
    leftovers = transport.leftover_messages()
    if leftovers:
        raise ExecutionError(
            f"{schedule.describe()}: {leftovers} message(s) sent but never "
            f"received"
        )
    return buffers


def run_collective_threaded(
    collective: str,
    algorithm: str,
    p: int,
    count: int,
    *,
    k: Optional[int] = None,
    root: int = 0,
    op: ReduceOp = SUM,
    seed: int = 0,
    timeout: float = 30.0,
    faults: Optional[FaultPlan] = None,
    check: bool = True,
    compiled: bool = True,
) -> List[np.ndarray]:
    """End-to-end: build a schedule, run it over real threads on random
    data, and check the result against the NumPy reference.

    The threaded counterpart of
    :func:`repro.runtime.executor.run_collective`, and the one-call way to
    exercise a :class:`~repro.faults.plan.FaultPlan`: injected loss is
    recovered by ack/retry (results stay element-exact), unmaskable
    faults raise a structured :class:`~repro.errors.PartialFailure`.
    """
    from ..core.registry import build_schedule
    from .buffers import (
        check_outputs,
        initial_buffers,
        make_inputs,
        reference_result,
    )

    schedule = build_schedule(collective, algorithm, p, k=k, root=root)
    rng = np.random.default_rng(seed)
    inputs = make_inputs(collective, p, count, root=root, rng=rng)
    buffers = initial_buffers(schedule, inputs, count)
    execute_threaded(
        schedule, buffers, op=op, timeout=timeout, faults=faults,
        compiled=compiled,
    )
    if check:
        expected = reference_result(collective, inputs, count, op=op,
                                    root=root)
        check_outputs(schedule, buffers, expected, count)
    return buffers
