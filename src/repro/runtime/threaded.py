"""Thread-based message-passing transport.

Where :mod:`repro.runtime.executor` runs schedules under a cooperative
progress loop, this module runs them the way an MPI job actually would: one
worker per rank, each independently walking its own program and blocking on
channel receives.  Channels are per-(src, dst) FIFO queues, so the MPI
non-overtaking rule holds by construction while *everything else* — step
interleaving across ranks, send/receive timing — is at the mercy of the OS
scheduler.  Bugs that a lockstep executor can mask (missing waits, matching
that only works under one interleaving) surface here as mismatched data or
a deadlock timeout.

Python's GIL serializes the NumPy work, but that is irrelevant for what
this transport is for: exercising the *ordering* semantics of schedules
under real asynchrony.  (Timing fidelity is the simulator's job.)
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.blocks import BlockMap
from ..core.schedule import CopyOp, RecvOp, Schedule, SendOp
from ..errors import ExecutionError
from .executor import NumpyModel
from .ops import SUM, ReduceOp

__all__ = ["ThreadedTransport", "execute_threaded"]


@dataclass
class _RankFailure:
    rank: int
    error: BaseException


class ThreadedTransport:
    """Executes a schedule with one thread per rank.

    Parameters
    ----------
    schedule:
        The collective schedule to run.
    timeout:
        Per-receive timeout in seconds.  A blocked receive exceeding it
        aborts the run with a deadlock diagnosis (a correct schedule on an
        unloaded machine completes receives in microseconds; the default
        leaves three orders of magnitude of headroom).
    """

    def __init__(self, schedule: Schedule, *, timeout: float = 30.0) -> None:
        self.schedule = schedule
        self.timeout = timeout
        self._channels: Dict[Tuple[int, int], "queue.SimpleQueue[np.ndarray]"] = {}
        self._failures: List[_RankFailure] = []
        self._failure_lock = threading.Lock()
        self._abort = threading.Event()

    def _channel(self, src: int, dst: int) -> "queue.SimpleQueue[np.ndarray]":
        # Channels are created up front in run(), so worker threads only
        # ever read this dict — no lock needed on the hot path.
        return self._channels[(src, dst)]

    def run(
        self, buffers: List[np.ndarray], *, op: ReduceOp = SUM
    ) -> List[np.ndarray]:
        """Run the schedule over ``buffers`` (mutated in place)."""
        sched = self.schedule
        if len(buffers) != sched.nranks:
            raise ExecutionError(
                f"need {sched.nranks} buffers, got {len(buffers)}"
            )
        count = len(buffers[0])
        blocks = sched.block_map(count)
        model = NumpyModel(blocks, buffers, op)

        # Pre-create every channel the schedule uses.
        for prog in sched.programs:
            for _, sop in prog.iter_ops():
                if isinstance(sop, SendOp):
                    self._channels.setdefault(
                        (prog.rank, sop.peer), queue.SimpleQueue()
                    )

        threads = [
            threading.Thread(
                target=self._worker,
                args=(rank, model),
                name=f"repro-rank-{rank}",
                daemon=True,
            )
            for rank in range(sched.nranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=self.timeout + 5.0)
            if t.is_alive():
                self._abort.set()
                raise ExecutionError(
                    f"{sched.describe()}: thread {t.name} failed to finish"
                )
        if self._failures:
            first = self._failures[0]
            raise ExecutionError(
                f"{sched.describe()}: rank {first.rank} failed: {first.error}"
            ) from first.error
        return buffers

    def _worker(self, rank: int, model: NumpyModel) -> None:
        try:
            for step_idx, step in enumerate(self.schedule.programs[rank].steps):
                if self._abort.is_set():
                    return
                # Post phase: snapshot + enqueue all sends, apply copies.
                for sop in step.ops:
                    if isinstance(sop, SendOp):
                        self._channel(rank, sop.peer).put(
                            model.snapshot(rank, sop)
                        )
                for sop in step.ops:
                    if isinstance(sop, CopyOp):
                        model.apply_copy(rank, sop)
                # Wait phase: drain receives in op order (FIFO per channel).
                for sop in step.ops:
                    if isinstance(sop, RecvOp):
                        try:
                            payload = self._channel(sop.peer, rank).get(
                                timeout=self.timeout
                            )
                        except queue.Empty:
                            raise ExecutionError(
                                f"rank {rank} step {step_idx}: timed out "
                                f"waiting for blocks {list(sop.blocks)} "
                                f"from rank {sop.peer}"
                            ) from None
                        except KeyError:
                            raise ExecutionError(
                                f"rank {rank} step {step_idx}: no channel "
                                f"{sop.peer}->{rank} exists (receive with "
                                f"no matching send)"
                            ) from None
                        model.apply_recv(rank, sop, payload)
        except BaseException as exc:  # propagate to run()
            with self._failure_lock:
                self._failures.append(_RankFailure(rank=rank, error=exc))
            self._abort.set()

    def leftover_messages(self) -> int:
        """Messages sent but never received (0 for a matched schedule)."""
        return sum(q.qsize() for q in self._channels.values())


def execute_threaded(
    schedule: Schedule,
    buffers: List[np.ndarray],
    *,
    op: ReduceOp = SUM,
    timeout: float = 30.0,
) -> List[np.ndarray]:
    """Convenience wrapper: run ``schedule`` on a fresh threaded transport
    and verify no messages were left unconsumed."""
    transport = ThreadedTransport(schedule, timeout=timeout)
    transport.run(buffers, op=op)
    leftovers = transport.leftover_messages()
    if leftovers:
        raise ExecutionError(
            f"{schedule.describe()}: {leftovers} message(s) sent but never "
            f"received"
        )
    return buffers
