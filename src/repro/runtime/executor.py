"""Deterministic NumPy executor for collective schedules.

Plugs a concrete array-moving data model into the generic matching engine
(:mod:`repro.core.runner`), giving real data movement with nonblocking-send
snapshot semantics.  The high-level entry point
:func:`run_collective` builds, executes, and checks a collective in one
call — the quickest way to see an algorithm move actual bytes:

>>> import numpy as np
>>> from repro.runtime.executor import run_collective
>>> out = run_collective("allreduce", "recursive_multiplying", p=9, k=3,
...                      count=17)
>>> bool(np.array_equal(out.buffers[0], out.expected[0]))
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.blocks import BlockMap
from ..core.registry import build_schedule
from ..core.runner import run_schedule
from ..core.schedule import CopyOp, RecvOp, Schedule, SendOp
from ..errors import ExecutionError
from ..obs import Obs, get_obs
from .buffers import (
    check_outputs,
    initial_buffers,
    make_inputs,
    reference_result,
)
from .ops import SUM, ReduceOp

__all__ = ["NumpyModel", "execute", "run_collective", "CollectiveRun"]


class NumpyModel:
    """Array-backed data model for :func:`repro.core.runner.run_schedule`.

    Payloads are contiguous copies of the named blocks (concatenated in
    block order), exactly what a real MPI message would carry for a
    non-contiguous datatype built from those blocks.
    """

    def __init__(
        self,
        blocks: BlockMap,
        buffers: List[np.ndarray],
        op: ReduceOp = SUM,
    ) -> None:
        self.blocks = blocks
        self.buffers = buffers
        self.op = op
        self.bytes_moved = 0  # elements, really; kept for stats

    def _gather_payload(self, rank: int, block_ids: Sequence[int]) -> np.ndarray:
        buf = self.buffers[rank]
        parts = [buf[slice(*self.blocks.range_of(b))] for b in block_ids]
        payload = np.concatenate(parts) if len(parts) > 1 else parts[0].copy()
        # np.concatenate already copies; the single-block path copies
        # explicitly so in-flight data never aliases the live buffer
        # (nonblocking-send snapshot semantics).
        return payload

    def snapshot(self, rank: int, op: SendOp) -> np.ndarray:
        payload = self._gather_payload(rank, op.blocks)
        self.bytes_moved += payload.size
        return payload

    def apply_recv(self, rank: int, op: RecvOp, payload: np.ndarray) -> None:
        buf = self.buffers[rank]
        pos = 0
        for b in op.blocks:
            start, stop = self.blocks.range_of(b)
            size = stop - start
            chunk = payload[pos : pos + size]
            if chunk.size != size:
                raise ExecutionError(
                    f"rank {rank}: payload for block {b} has {chunk.size} "
                    f"elements, expected {size}"
                )
            if op.reduce:
                self.op.apply(buf[start:stop], chunk)
            else:
                buf[start:stop] = chunk
            pos += size
        if pos != payload.size:
            raise ExecutionError(
                f"rank {rank}: payload of {payload.size} elements does not "
                f"match blocks {op.blocks} totalling {pos}"
            )

    def apply_copy(self, rank: int, op: CopyOp) -> None:
        buf = self.buffers[rank]
        s0, s1 = self.blocks.range_of(op.src)
        d0, d1 = self.blocks.range_of(op.dst)
        if s1 - s0 != d1 - d0:
            raise ExecutionError(
                f"rank {rank}: copy between blocks of different sizes "
                f"({op.src}→{op.dst})"
            )
        buf[d0:d1] = buf[s0:s1]


def execute(
    schedule: Schedule,
    buffers: List[np.ndarray],
    *,
    op: ReduceOp = SUM,
    block_map=None,
    compiled: bool = True,
    obs: Optional[Obs] = None,
) -> List[np.ndarray]:
    """Execute ``schedule`` in place over per-rank ``buffers``.

    Buffers must all have the same length; by default the schedule's
    near-equal block partition is applied to that length.  Passing an
    explicit ``block_map`` (see
    :class:`~repro.core.blocks.ExplicitBlockMap`) runs the same schedule
    over caller-chosen block sizes — the v-variant collectives
    (gatherv/scatterv) are exactly tree schedules under an uneven map.
    Returns the (mutated) buffer list.

    With ``compiled=True`` (the default) the schedule is lowered to flat
    per-rank tables (:mod:`repro.compile`, cached by fingerprint) and run
    by the tight compiled loop; results are bit-identical to the
    interpreter (pinned by the differential suite).  Pass
    ``compiled=False`` to force the op-by-op interpreter — the escape
    hatch when you suspect the compiler.
    """
    if len(buffers) != schedule.nranks:
        raise ExecutionError(
            f"need {schedule.nranks} buffers, got {len(buffers)}"
        )
    count = len(buffers[0])
    for r, buf in enumerate(buffers):
        if len(buf) != count:
            raise ExecutionError(
                f"rank {r} buffer has {len(buf)} elements, rank 0 has {count}"
            )
    if block_map is None:
        block_map = schedule.block_map(count)
    elif block_map.nblocks != schedule.nblocks:
        raise ExecutionError(
            f"block map has {block_map.nblocks} blocks but the schedule "
            f"uses {schedule.nblocks}"
        )
    elif block_map.total != count:
        raise ExecutionError(
            f"block map covers {block_map.total} elements but buffers "
            f"hold {count}"
        )
    o = get_obs(obs)
    if compiled:
        from ..compile import get_or_compile, run_compiled_lockstep

        bound = get_or_compile(schedule).bind(block_map)
        if o.enabled:
            with o.span(
                "execute", schedule=schedule.describe(), backend="lockstep",
                compiled=True,
            ):
                moved = run_compiled_lockstep(bound, buffers, op)
            m = o.metrics
            m.counter("repro_executor_runs_total", backend="lockstep").inc()
            m.counter(
                "repro_executor_elements_moved_total", backend="lockstep"
            ).inc(moved)
        else:
            run_compiled_lockstep(bound, buffers, op)
        return buffers
    model = NumpyModel(block_map, buffers, op)
    if o.enabled:
        with o.span(
            "execute", schedule=schedule.describe(), backend="lockstep"
        ):
            run_schedule(schedule, model)
        m = o.metrics
        m.counter("repro_executor_runs_total", backend="lockstep").inc()
        m.counter(
            "repro_executor_elements_moved_total", backend="lockstep"
        ).inc(model.bytes_moved)
    else:
        run_schedule(schedule, model)
    return buffers


@dataclass
class CollectiveRun:
    """Everything :func:`run_collective` produced, for inspection."""

    schedule: Schedule
    inputs: List[np.ndarray]
    buffers: List[np.ndarray]
    expected: Dict[int, np.ndarray]


def run_collective(
    collective: str,
    algorithm: str,
    p: int,
    count: int,
    *,
    k: Optional[int] = None,
    root: int = 0,
    op: ReduceOp = SUM,
    dtype: np.dtype = np.dtype(np.int64),
    seed: int = 0,
    check: bool = True,
    rtol: float = 0.0,
    atol: float = 0.0,
) -> CollectiveRun:
    """Build a schedule, run it on random data, and check the result.

    This is the end-to-end correctness path the test suite leans on; see
    :mod:`repro.runtime.buffers` for the buffer conventions.
    """
    schedule = build_schedule(collective, algorithm, p, k=k, root=root)
    rng = np.random.default_rng(seed)
    inputs = make_inputs(collective, p, count, dtype=dtype, root=root, rng=rng)
    buffers = initial_buffers(schedule, inputs, count, dtype=dtype)
    execute(schedule, buffers, op=op)
    expected = reference_result(collective, inputs, count, op=op, root=root)
    if check:
        check_outputs(schedule, buffers, expected, count, rtol=rtol, atol=atol)
    return CollectiveRun(
        schedule=schedule, inputs=inputs, buffers=buffers, expected=expected
    )
