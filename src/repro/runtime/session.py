"""MPI-style programming facade over the threaded transport.

Downstream users rarely want to hand-build schedules; they want to write
rank code against an MPI-looking API and have the library pick algorithms
— the way the paper's selection configuration makes MPICH transparently
use the generalized algorithms (§VI-G).  This module provides exactly
that:

>>> import numpy as np
>>> from repro.runtime.session import Session
>>> def worker(comm):
...     local = np.full(4, comm.rank, dtype=np.int64)
...     total = comm.allreduce(local)
...     assert total.tolist() == [6, 6, 6, 6]  # 0+1+2+3
...     return int(total[0])
>>> Session(nranks=4).run(worker)
[6, 6, 6, 6]

Each rank runs in its own thread with a :class:`Comm` handle exposing
``bcast/reduce/gather/scatter/allgather/allreduce/reduce_scatter/barrier``.
Algorithm choice per call comes from a :class:`~repro.selection.table.
SelectionTable` (defaults to the MPICH policy), so pointing a session at a
tuned table changes every collective underneath the application — the
paper's "one environment variable" user experience.

Implementation notes: schedules are deterministic functions of
``(collective, algorithm, p, k, root)``, so every rank builds its own copy
independently — no coordination is needed beyond the message channels
themselves (per-(src, dst) FIFO queues shared through the session).  Each
rank walks only its own program; collective calls across ranks match up
because MPI semantics already require all ranks to issue collectives in
the same order.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.blocks import BlockMap
from ..core.registry import build_schedule, info
from ..core.schedule import CopyOp, RecvOp, Schedule, SendOp
from ..errors import ExecutionError, FaultError, PartialFailure
from ..faults.channel import (
    ChannelAborted,
    ChannelBroken,
    ChannelMonitor,
    ChannelTimeout,
    LossyChannel,
)
from ..faults.plan import FaultPlan
from ..selection.defaults import mpich_policy
from ..selection.table import SelectionTable
from .ops import SUM, ReduceOp

__all__ = ["Session", "Comm"]


class _Shared:
    """Session state shared by all rank threads."""

    def __init__(
        self,
        nranks: int,
        table: SelectionTable,
        timeout: float,
        faults: Optional[FaultPlan] = None,
        detector=None,
    ) -> None:
        self.nranks = nranks
        self.table = table
        self.timeout = timeout
        self.faults = faults if faults is not None and faults.is_active else None
        # Optional failure detector (duck-typed to
        # repro.recovery.HeartbeatDetector): ranks beat it on every
        # collective call, and structured faults are confirmed on it when
        # the session aggregates failures.
        self.detector = detector
        # One collective-call counter per rank; each rank thread only ever
        # touches its own slot (crash/straggler faults index by call).
        self.call_counts = [0] * nranks
        self._channels: Dict[Tuple[int, int], LossyChannel] = {}
        self._channel_lock = threading.Lock()
        self._schedules: Dict[Tuple, Schedule] = {}
        self._schedule_lock = threading.Lock()
        self.abort = threading.Event()
        # Rendezvous state for Comm.split: per (comm-id, call-index), the
        # (color, key) every member registered, plus a barrier to release
        # them together once all have arrived.
        self._split_lock = threading.Lock()
        self._splits: Dict[Tuple, Dict[int, Tuple[int, int]]] = {}
        self._split_barriers: Dict[Tuple, threading.Barrier] = {}

    def split_rendezvous(
        self,
        comm_key: Tuple,
        nmembers: int,
        global_rank: int,
        color: int,
        key: int,
    ) -> Dict[int, Tuple[int, int]]:
        """Collect every member's (color, key); returns the full table."""
        with self._split_lock:
            table = self._splits.setdefault(comm_key, {})
            table[global_rank] = (color, key)
            barrier = self._split_barriers.setdefault(
                comm_key, threading.Barrier(nmembers)
            )
        barrier.wait(timeout=self.timeout)
        return table

    def channel(self, src: int, dst: int) -> LossyChannel:
        key = (src, dst)
        ch = self._channels.get(key)
        if ch is None:
            with self._channel_lock:
                ch = self._channels.setdefault(
                    key, LossyChannel(src, dst, self.faults)
                )
        return ch

    def live_channels(self) -> List[LossyChannel]:
        """Monitor hook: snapshot of the channels created so far."""
        with self._channel_lock:
            return list(self._channels.values())

    def schedule(self, key: Tuple, build: Callable[[], Schedule]) -> Schedule:
        """Schedules are deterministic, but sharing one copy across ranks
        keeps memory flat for large sessions."""
        sched = self._schedules.get(key)
        if sched is None:
            with self._schedule_lock:
                sched = self._schedules.get(key)
                if sched is None:
                    sched = self._schedules[key] = build()
        return sched


class Comm:
    """Per-rank communicator handle (the ``MPI_COMM_WORLD`` analogue).

    Sub-communicators created by :meth:`split` reuse the session's global
    channels: collective schedules are built over the group and remapped
    onto the members' global ranks, so a subgroup collective is just a
    schedule whose idle ranks happen to be every rank outside the group.
    """

    def __init__(
        self,
        shared: _Shared,
        rank: int,
        *,
        members: Optional[List[int]] = None,
        comm_id: Tuple = ("world",),
    ) -> None:
        self._shared = shared
        self._members = members if members is not None else list(
            range(shared.nranks)
        )
        self._comm_id = comm_id
        self._split_calls = 0
        self.global_rank = rank
        self.rank = self._members.index(rank)
        self.size = len(self._members)

    def split(self, color: int, key: Optional[int] = None) -> Optional["Comm"]:
        """MPI_Comm_split: partition this communicator by ``color``.

        Members sharing a color form a new communicator, ordered by
        ``key`` (ties by current rank, per the MPI standard); a negative
        color opts out and returns ``None``.
        """
        self._split_calls += 1
        call_key = (self._comm_id, "split", self._split_calls)
        table = self._shared.split_rendezvous(
            call_key,
            self.size,
            self.global_rank,
            color,
            key if key is not None else self.rank,
        )
        if color < 0:
            return None
        mine = sorted(
            (
                (ck[1], self._members.index(g), g)
                for g, ck in table.items()
                if ck[0] == color
            ),
        )
        members = [g for _, _, g in mine]
        return Comm(
            self._shared,
            self.global_rank,
            members=members,
            comm_id=call_key + (color,),
        )

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------

    def bcast(self, data: Optional[np.ndarray], *, root: int = 0,
              count: Optional[int] = None,
              dtype: np.dtype = np.dtype(np.int64)) -> np.ndarray:
        """Broadcast ``data`` from ``root``.

        Non-roots pass either a template buffer (whose length and dtype
        describe the incoming message) or ``count`` plus ``dtype``.
        """
        if self.rank == root:
            if data is None:
                raise ExecutionError("bcast root must supply data")
            buf = np.array(data, copy=True)
        else:
            if data is not None:
                n, dt = len(data), np.asarray(data).dtype
            elif count is not None:
                n, dt = count, np.dtype(dtype)
            else:
                raise ExecutionError(
                    "bcast non-root needs `count` (or a template buffer)"
                )
            buf = np.zeros(n, dtype=dt)
        return self._run("bcast", buf, root=root)

    def reduce(self, data: np.ndarray, *, op: ReduceOp = SUM,
               root: int = 0) -> Optional[np.ndarray]:
        """Reduce to ``root``; returns the result there, ``None`` elsewhere."""
        out = self._run("reduce", np.array(data, copy=True), op=op, root=root)
        return out if self.rank == root else None

    def allreduce(self, data: np.ndarray, *, op: ReduceOp = SUM) -> np.ndarray:
        """Reduce across all ranks; every rank returns the full result."""
        return self._run("allreduce", np.array(data, copy=True), op=op)

    def gather(self, data: np.ndarray, *, root: int = 0) -> Optional[np.ndarray]:
        """Gather equal-size contributions; root returns the concatenation."""
        total, buf = self._blockwise_buffer(data)
        out = self._run("gather", buf, root=root, count=total)
        return out if self.rank == root else None

    def scatter(self, data: Optional[np.ndarray], *, root: int = 0) -> np.ndarray:
        """Scatter the root's buffer; every rank returns its block."""
        if self.rank == root:
            if data is None:
                raise ExecutionError("scatter root must supply data")
            total = len(data)
        else:
            total = None
        total = self._agree_on_count("scatter", total, root)
        blocks = BlockMap(total, self.size)
        if self.rank == root:
            buf = np.array(data, copy=True)
        else:
            buf = np.zeros(total, dtype=np.int64 if data is None
                           else np.asarray(data).dtype)
        out = self._run("scatter", buf, root=root, count=total)
        start, stop = blocks.range_of(self.rank)
        return out[start:stop]

    def allgather(self, data: np.ndarray) -> np.ndarray:
        """Gather equal-size contributions; every rank returns the
        concatenation in rank order."""
        total, buf = self._blockwise_buffer(data)
        return self._run("allgather", buf, count=total)

    def gatherv(self, data: np.ndarray, *, root: int = 0) -> Optional[np.ndarray]:
        """Gather *variable-size* contributions; the root returns their
        concatenation in rank order (MPI_Gatherv).

        Implemented as the regular gather tree over an
        :class:`~repro.core.blocks.ExplicitBlockMap` built from an
        exchanged count vector — the schedule is identical, only the
        block arithmetic changes.
        """
        from ..core.blocks import ExplicitBlockMap

        data = np.asarray(data)
        counts = self.allgather(np.array([len(data)], dtype=np.int64))
        bm = ExplicitBlockMap(tuple(int(c) for c in counts))
        buf = np.zeros(bm.total, dtype=data.dtype)
        start, stop = bm.range_of(self.rank)
        buf[start:stop] = data
        out = self._run("gather", buf, root=root, count=bm.total,
                        block_map=bm)
        return out if self.rank == root else None

    def scatterv(
        self,
        data: Optional[np.ndarray],
        counts: np.ndarray,
        *,
        root: int = 0,
    ) -> np.ndarray:
        """Scatter *variable-size* blocks from the root (MPI_Scatterv).

        All ranks pass the same ``counts`` vector (one entry per rank);
        each returns its own block.
        """
        from ..core.blocks import ExplicitBlockMap

        counts = np.asarray(counts)
        if len(counts) != self.size:
            raise ExecutionError(
                f"scatterv counts has {len(counts)} entries for "
                f"{self.size} ranks"
            )
        bm = ExplicitBlockMap(tuple(int(c) for c in counts))
        if self.rank == root:
            if data is None or len(data) != bm.total:
                raise ExecutionError(
                    f"scatterv root needs a buffer of {bm.total} elements"
                )
            buf = np.array(data, copy=True)
        else:
            buf = np.zeros(
                bm.total,
                dtype=np.asarray(data).dtype if data is not None else np.int64,
            )
        out = self._run("scatter", buf, root=root, count=bm.total,
                        block_map=bm)
        start, stop = bm.range_of(self.rank)
        return out[start:stop]

    def reduce_scatter(self, data: np.ndarray, *, op: ReduceOp = SUM) -> np.ndarray:
        """Reduce full vectors, scatter the result; returns this rank's block."""
        buf = np.array(data, copy=True)
        out = self._run("reduce_scatter", buf, op=op)
        blocks = BlockMap(len(out), self.size)
        start, stop = blocks.range_of(self.rank)
        return out[start:stop]

    def alltoall(self, data: np.ndarray) -> np.ndarray:
        """Personalized exchange: ``data`` holds ``size`` equal chunks,
        chunk ``j`` destined for rank ``j``; returns this rank's received
        column (chunk ``i`` from rank ``i``)."""
        data = np.asarray(data)
        if len(data) % self.size:
            raise ExecutionError(
                f"alltoall buffer of {len(data)} elements is not "
                f"divisible into {self.size} chunks"
            )
        p = self.size
        total = len(data) * p  # the p² block space
        grid = BlockMap(total, p * p)
        buf = np.zeros(total, dtype=data.dtype)
        pos = 0
        for d in range(p):
            start, stop = grid.range_of(self.rank * p + d)
            buf[start:stop] = data[pos : pos + (stop - start)]
            pos += stop - start
        out = self._run("alltoall", buf, count=total)
        return np.concatenate(
            [out[slice(*grid.range_of(s * p + self.rank))] for s in range(p)]
        )

    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""
        self._run("barrier", np.zeros(1, dtype=np.int64))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _blockwise_buffer(self, data: np.ndarray) -> Tuple[int, np.ndarray]:
        """Assemble the full-size working buffer for gather-family calls.

        Contributions must be equal-sized across ranks (the MPI contract
        for these collectives); the total is ``size * len(data)``.
        """
        data = np.asarray(data)
        total = len(data) * self.size
        blocks = BlockMap(total, self.size)
        buf = np.zeros(total, dtype=data.dtype)
        start, stop = blocks.range_of(self.rank)
        buf[start:stop] = data
        return total, buf

    def _agree_on_count(self, collective: str, total: Optional[int],
                        root: int) -> int:
        """Distribute the root's element count (tiny side-band bcast)."""
        shared = self._shared
        root_g = self._members[root]
        if self.rank == root:
            assert total is not None
            for dst in self._members:
                if dst != root_g:
                    shared.channel(root_g, dst).send(
                        np.array([total], dtype=np.int64)
                    )
            return total
        try:
            msg = shared.channel(root_g, self.global_rank).recv(
                shared.timeout, abort=shared.abort
            )
        except ChannelTimeout:
            raise ExecutionError(
                f"{collective}: timed out waiting for the root's count"
            ) from None
        except ChannelAborted:
            raise ExecutionError(
                "session aborted by another rank"
            ) from None
        except ChannelBroken as broken:
            raise FaultError(
                f"{collective}: {broken.failure.describe()}",
                kind="retries_exhausted",
                rank=self.global_rank,
                peer=root_g,
                seq=broken.failure.seq,
                retries=broken.failure.attempts,
            ) from None
        return int(msg[0])

    def _run(self, collective: str, buf: np.ndarray, *, op: ReduceOp = SUM,
             root: int = 0, count: Optional[int] = None,
             block_map=None) -> np.ndarray:
        shared = self._shared
        p = self.size
        n = count if count is not None else len(buf)
        faults = shared.faults
        # At session level, Crash.step / straggler slowdown index the
        # rank's Nth collective call (schedules vary per call, so a
        # schedule-step index would be meaningless here).
        call_idx = shared.call_counts[self.global_rank]
        shared.call_counts[self.global_rank] = call_idx + 1
        if shared.detector is not None:
            shared.detector.heartbeat(
                self.global_rank, time.monotonic(), step=call_idx
            )
        if faults is not None:
            if faults.crash_step(self.global_rank) == call_idx:
                raise FaultError(
                    f"rank {self.global_rank} crashed before collective "
                    f"call {call_idx} ({collective}) (injected)",
                    kind="crash",
                    rank=self.global_rank,
                    step=call_idx,
                )
            slowdown = faults.straggler_factor(self.global_rank)
            if slowdown > 1.0:
                time.sleep(faults.straggler_step_delay * (slowdown - 1.0))
        if p == 1:
            return buf
        choice = shared.table.select(collective, p, n * buf.itemsize)
        entry = info(collective, choice.algorithm)
        key = (collective, choice.algorithm, p, choice.k,
               root if entry.takes_root else 0, tuple(self._members))
        members = self._members

        def build() -> Schedule:
            sched = build_schedule(
                collective, choice.algorithm, p, k=choice.k,
                root=root if entry.takes_root else 0,
            )
            if members != list(range(shared.nranks)):
                from ..core.hierarchical import remap_ranks

                sched = remap_ranks(sched, members, shared.nranks)
            return sched

        sched = shared.schedule(key, build)
        self._execute_rank_program(sched, buf, op, block_map=block_map)
        return buf

    def _execute_rank_program(self, sched: Schedule, buf: np.ndarray,
                              op: ReduceOp, *, block_map=None) -> None:
        """Walk this rank's program against the session channels."""
        shared = self._shared
        blocks = block_map if block_map is not None else sched.block_map(
            len(buf)
        )
        rank = self.global_rank
        for step_idx, step in enumerate(sched.programs[rank].steps):
            if shared.abort.is_set():
                raise ExecutionError("session aborted by another rank")
            for sop in step.ops:
                if isinstance(sop, SendOp):
                    payload = np.concatenate(
                        [buf[slice(*blocks.range_of(b))] for b in sop.blocks]
                    )
                    shared.channel(rank, sop.peer).send(payload)
                elif isinstance(sop, CopyOp):
                    s0, s1 = blocks.range_of(sop.src)
                    d0, d1 = blocks.range_of(sop.dst)
                    buf[d0:d1] = buf[s0:s1]
            for sop in step.ops:
                if isinstance(sop, RecvOp):
                    try:
                        payload = shared.channel(sop.peer, rank).recv(
                            shared.timeout, abort=shared.abort
                        )
                    except ChannelTimeout:
                        shared.abort.set()
                        raise ExecutionError(
                            f"{sched.describe()}: rank {rank} step "
                            f"{step_idx} timed out waiting on rank "
                            f"{sop.peer}"
                        ) from None
                    except ChannelAborted:
                        raise ExecutionError(
                            "session aborted by another rank"
                        ) from None
                    except ChannelBroken as broken:
                        raise FaultError(
                            f"{sched.describe()}: rank {rank} step "
                            f"{step_idx}: {broken.failure.describe()}",
                            kind="retries_exhausted",
                            rank=rank,
                            step=step_idx,
                            peer=sop.peer,
                            seq=broken.failure.seq,
                            retries=broken.failure.attempts,
                        ) from None
                    pos = 0
                    for b in sop.blocks:
                        start, stop = blocks.range_of(b)
                        chunk = payload[pos : pos + (stop - start)]
                        if sop.reduce:
                            op.apply(buf[start:stop], chunk)
                        else:
                            buf[start:stop] = chunk
                        pos += stop - start


class Session:
    """Spawns one thread per rank and runs a user function on each.

    Parameters
    ----------
    nranks:
        Number of MPI-style processes (threads).
    table:
        Algorithm selection table; defaults to the MPICH policy.  Pass a
        tuned table (see :func:`repro.selection.tuner.tune`) to switch
        every collective underneath the application.
    timeout:
        Per-receive timeout (seconds) before the session aborts with a
        deadlock diagnosis.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` — the same object
        the simulator and threaded transport accept.  Link-level faults
        (drops, duplicates) are recovered by the ack/retry protocol; for
        :class:`~repro.faults.plan.Crash` and
        :class:`~repro.faults.plan.Straggler` the ``step`` index denotes
        the rank's Nth *collective call* (sessions run many schedules, so
        schedule-step indices would be meaningless).  Unmaskable faults
        raise a structured :class:`~repro.errors.PartialFailure`.
    """

    def __init__(
        self,
        nranks: int,
        *,
        table: Optional[SelectionTable] = None,
        timeout: float = 30.0,
        faults: Optional[FaultPlan] = None,
        detector=None,
    ) -> None:
        if nranks < 1:
            raise ExecutionError(f"nranks must be >= 1, got {nranks}")
        self.nranks = nranks
        self.table = table or mpich_policy()
        self.timeout = timeout
        self.faults = faults
        self.detector = detector

    def run(self, fn: Callable[[Comm], object]) -> List[object]:
        """Run ``fn(comm)`` on every rank; returns per-rank results.

        The first rank exception aborts the whole session and re-raises;
        injected faults surface as a :class:`~repro.errors.PartialFailure`
        aggregating every rank's structured diagnosis.
        """
        shared = _Shared(
            self.nranks, self.table, self.timeout, self.faults,
            detector=self.detector,
        )
        results: List[object] = [None] * self.nranks
        failures: List[Tuple[int, BaseException]] = []
        lock = threading.Lock()

        monitor: Optional[ChannelMonitor] = None
        if shared.faults is not None and shared.faults.has_loss:
            monitor = ChannelMonitor(
                shared.live_channels,
                on_failure=lambda failure: shared.abort.set(),
                tick=max(shared.faults.retry.rto / 4.0, 0.001),
            )
            monitor.start()

        def worker(rank: int) -> None:
            try:
                results[rank] = fn(Comm(shared, rank))
            except BaseException as exc:
                with lock:
                    failures.append((rank, exc))
                shared.abort.set()

        threads = [
            threading.Thread(target=worker, args=(r,), daemon=True,
                             name=f"repro-session-{r}")
            for r in range(self.nranks)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=self.timeout + 5.0)
                if t.is_alive():
                    shared.abort.set()
                    raise ExecutionError(f"session thread {t.name} hung")
        finally:
            if monitor is not None:
                monitor.stop()
        if failures:
            primary = [
                (rank, exc)
                for rank, exc in failures
                if isinstance(exc, FaultError)
            ]
            if primary:
                if self.detector is not None:
                    now = time.monotonic()
                    for _, exc in primary:
                        blamed = (
                            exc.peer
                            if exc.kind == "retries_exhausted"
                            and exc.peer is not None
                            else exc.rank
                        )
                        if blamed is not None:
                            self.detector.confirm(
                                blamed, kind=exc.kind, step=exc.step,
                                peer=exc.peer, now=now,
                            )
                raise PartialFailure(
                    f"session: rank(s) {sorted(r for r, _ in primary)} "
                    f"failed under injected faults",
                    failed_ranks=sorted(r for r, _ in primary),
                    stalled_ranks=sorted(
                        r for r, exc in failures
                        if not isinstance(exc, FaultError)
                    ),
                    faults=[exc for _, exc in primary],
                )
            rank, exc = failures[0]
            raise ExecutionError(f"rank {rank} failed: {exc}") from exc
        return results
