"""Crash-safe append-only JSONL journal.

The sweep pipeline's durability primitive: each completed record is one
line of JSON, appended and flushed before the next point starts, so a
process killed at *any* instant loses at most the record being written —
and that torn tail is recognized and skipped on replay (a valid JSON
line is either fully present or not parseable, there is no middle).

Records are caller-defined dicts; the journal adds only a line-format
version (``"v"``) so future shape changes replay cleanly.  A header
record (conventionally the first line, written via :meth:`append`)
carries the sweep's configuration so ``--resume`` can refuse to splice
results from a different machine or grid — see
:mod:`repro.bench.sweep`.

Durability level matches :class:`~repro.store.disk.DiskStore`: flushed
writes survive process death (SIGKILL included) by default; pass
``fsync=True`` to also survive machine crashes, at per-record cost.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import StoreError
from ..obs import OBS

__all__ = ["LINE_VERSION", "JournalWriter", "read_journal", "journal_header"]

#: Journal line format version (bump protocol: CONTRIBUTING.md).
LINE_VERSION = 1


class JournalWriter:
    """Append-only writer; one flushed JSON line per record.

    Usable as a context manager.  Opening an existing journal appends by
    default — that is what makes ``--resume`` write its newly computed
    points into the same file the crashed run left behind; pass
    ``truncate=True`` to start a fresh run over a stale journal.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        fsync: bool = False,
        truncate: bool = False,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._records = 0
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(
                self.path, "w" if truncate else "a", encoding="utf-8"
            )
            if not truncate and self._fh.tell() > 0:
                # A crash can leave a torn, unterminated final line.
                # Without this, the first appended record would be glued
                # onto that garbage and lost on the next replay.
                with open(self.path, "rb") as probe:
                    probe.seek(-1, os.SEEK_END)
                    torn_tail = probe.read(1) != b"\n"
                if torn_tail:
                    self._fh.write("\n")
                    self._fh.flush()
        except OSError as exc:
            raise StoreError(f"cannot open journal {self.path}: {exc}")

    def append(self, record: Dict) -> None:
        """Write one record and flush it past the process boundary."""
        line = json.dumps(
            {"v": LINE_VERSION, **record},
            sort_keys=True,
            separators=(",", ":"),
        )
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._records += 1
        if OBS.enabled:
            OBS.metrics.counter("repro_journal_records_total").inc()

    @property
    def records_written(self) -> int:
        """Records appended through this writer (not the file total)."""
        return self._records

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal(
    path: Union[str, Path]
) -> Tuple[List[Dict], int]:
    """Replay a journal: ``(records, skipped_line_count)``.

    Tolerant by design: a torn final line (the crash signature), blank
    lines, undecodable lines, and lines of a different format version
    are *skipped and counted*, never raised — the caller simply re-runs
    whatever work the skipped lines would have covered.  A missing file
    reads as an empty journal.
    """
    records: List[Dict] = []
    skipped = 0
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return records, skipped
    except OSError as exc:
        raise StoreError(f"cannot read journal {path}: {exc}")
    for line in text.split("\n"):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if not isinstance(doc, dict) or doc.get("v") != LINE_VERSION:
            skipped += 1
            continue
        records.append(doc)
    if OBS.enabled and records:
        OBS.metrics.counter("repro_journal_replayed_total").inc(len(records))
    return records, skipped


def journal_header(records: List[Dict]) -> Optional[Dict]:
    """The first ``kind="header"`` record, or ``None``."""
    for record in records:
        if record.get("kind") == "header":
            return record
    return None
