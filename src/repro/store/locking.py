"""Advisory file locking for the durable store.

Multiple processes share one store directory: the parent sweep process,
its ``--jobs`` pool workers, and (eventually) the tuning-service daemon
all read and write the same entries.  Writes are already atomic
(temp-file + ``os.replace``), so readers can never observe a torn entry
— the lock exists for the *compound* operations: rebuilding a
quarantined entry, pruning orphaned temp files, and replaying a journal
while another process appends to it.

``FileLock`` wraps POSIX ``fcntl.flock`` on a dedicated lock file.  It
is **advisory** (cooperating processes only, like every flock user) and
**reentrant within a process** via a depth counter, because the store's
public methods compose (``get_or_rebuild`` inside a locked scan).  On
platforms without ``fcntl`` (Windows CI of a downstream fork) it
degrades to a process-local :class:`threading.Lock` — single-process
safety is preserved, cross-process exclusion is not, and the store
documents that degradation rather than failing to import.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Optional, Union

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl

    _HAVE_FCNTL = True
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]
    _HAVE_FCNTL = False

__all__ = ["FileLock", "have_flock"]


def have_flock() -> bool:
    """Whether cross-process ``flock`` locking is available on this host."""
    return _HAVE_FCNTL


class FileLock:
    """Reentrant advisory lock on a file, used as a context manager.

    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "demo.lock")
    >>> lock = FileLock(path)
    >>> with lock:
    ...     with lock:  # reentrant: compound store ops may nest
    ...         os.path.exists(path)
    True
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fd: Optional[int] = None
        self._depth = 0
        # Serializes threads within this process; flock alone would let
        # two threads of one process both "hold" the same lock.
        self._thread_lock = threading.RLock()

    def acquire(self) -> None:
        """Block until this process holds the lock (reentrant)."""
        self._thread_lock.acquire()
        self._depth += 1
        if self._depth > 1:
            return
        if _HAVE_FCNTL:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            fcntl.flock(self._fd, fcntl.LOCK_EX)

    def release(self) -> None:
        """Release one level; the file lock drops at depth zero."""
        if self._depth <= 0:
            raise RuntimeError(f"release() of unheld lock {self.path}")
        self._depth -= 1
        if self._depth == 0 and self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
                self._fd = None
        self._thread_lock.release()

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    @property
    def held(self) -> bool:
        """Whether the current process holds the lock (any depth)."""
        return self._depth > 0
