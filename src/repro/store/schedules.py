"""Disk-backed schedule cache: the tuning pipeline's warm start.

:class:`PersistentScheduleCache` extends the in-process
:class:`~repro.core.cache.ScheduleCache` with a
:class:`~repro.store.disk.DiskStore` tier: memory LRU first, then disk,
then the registry builder — with every build written through, so a
populated store survives the process and warm-starts the next sweep,
``repro-tune`` run, or tuning-service worker.

Entries hold a pickled schedule — loading one is meaningfully faster
than re-running the builder, which is the entire point of a warm start
(the portable JSON form is still available via ``repro-validate
--dump``).  Integrity is a ladder: the store's byte checksum catches any
on-disk damage before the pickle is ever touched; after decoding, the
entry's parameters are verified against the requested key, and the
recorded semantic :meth:`~repro.core.schedule.Schedule.fingerprint`
travels with the entry for external auditing.  Anything that fails to
decode to the schedule it claims to be is quarantined and rebuilt — the
same never-crash discipline the store applies to byte-level damage.
Builder *semantics* changes are handled by protocol, not by per-read
re-hashing: bump :data:`repro.store.disk.FORMAT_VERSION` (see
CONTRIBUTING.md) and every stale entry reads as a miss.
"""

from __future__ import annotations

import base64
import pickle
from pathlib import Path
from typing import Optional, Tuple, Union

from ..core.cache import ScheduleCache, ScheduleKey, schedule_key
from ..core.registry import info
from ..core.schedule import Schedule
from ..errors import ReproError
from ..obs import OBS
from .disk import DiskStore

__all__ = ["schedule_store_key", "PersistentScheduleCache", "open_schedule_store"]


def schedule_store_key(key: ScheduleKey) -> str:
    """The store key string for a normalized schedule cache key.

    >>> from repro.core.cache import schedule_key
    >>> schedule_store_key(schedule_key("allreduce", "knomial", 8))
    'schedule/allreduce/knomial/p=8/k=2/root=0'
    """
    collective, algorithm, p, k, root = key
    return f"schedule/{collective}/{algorithm}/p={p}/k={k}/root={root}"


class PersistentScheduleCache(ScheduleCache):
    """A :class:`ScheduleCache` with a disk tier under the memory LRU.

    Drop-in anywhere a ``ScheduleCache`` goes (including as the
    process-global cache via
    :func:`repro.core.cache.set_global_schedule_cache`): ``get_or_build``
    keeps the exact ``(schedule, hit)`` contract, where ``hit`` is true
    whenever the build was avoided — from memory *or* from disk.  Use
    :meth:`disk_stats` to tell the tiers apart.
    """

    def __init__(
        self,
        store: DiskStore,
        *,
        maxsize: int = 512,
        name: str = "schedule",
    ) -> None:
        super().__init__(maxsize=maxsize, name=name)
        self.store = store

    def get_or_build(
        self,
        collective: str,
        algorithm: str,
        p: int,
        *,
        k: Optional[int] = None,
        root: int = 0,
    ) -> Tuple[Schedule, bool]:
        """``(schedule, hit)`` — memory, then disk, then build+persist."""
        key = schedule_key(collective, algorithm, p, k=k, root=root)
        with self._lock:
            sched = self._entries.get(key)
            if sched is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return sched, True
        sched = self._load(key)
        if sched is not None:
            self._insert(key, sched, hit=True)
            return sched, True
        # Cold everywhere: build (outside the lock — builders are pure)
        # and write through so the *next* process starts warm.
        self._misses += 1
        sched = info(collective, algorithm).build(p, k=k, root=root)
        blob = pickle.dumps(sched, protocol=pickle.HIGHEST_PROTOCOL)
        self.store.put(
            schedule_store_key(key),
            {
                "fingerprint": sched.fingerprint(),
                "schedule_pickle": base64.b64encode(blob).decode("ascii"),
            },
        )
        self._insert(key, sched, hit=False)
        return sched, False

    def _load(self, key: ScheduleKey) -> Optional[Schedule]:
        """Decode + structurally verify one disk entry, or ``None``.

        The byte checksum already passed inside :meth:`DiskStore.get`;
        what remains is semantic: the blob must unpickle to a
        :class:`Schedule` whose parameters match the key it was filed
        under.  Anything else is quarantined and rebuilt — never raised.
        """
        store_key = schedule_store_key(key)
        payload = self.store.get(store_key)
        if payload is None:
            return None
        collective, algorithm, p, k, root = key
        try:
            sched = pickle.loads(base64.b64decode(payload["schedule_pickle"]))
            if not isinstance(sched, Schedule):
                raise ReproError("entry did not decode to a Schedule")
            # Builders alias at degenerate radices (knomial k=2 returns
            # a schedule labeled binomial, kring k=1 a ring), so
            # algorithm and k are not invariants of the entry — but the
            # collective, rank count, and root must match the key the
            # entry is filed under.
            if (
                sched.collective != collective
                or sched.nranks != p
                or (sched.root or 0) != root
            ):
                raise ReproError("entry parameters do not match its key")
        except Exception as exc:  # noqa: BLE001 — quarantine, never crash
            # The bytes were intact (checksum passed) but the content
            # does not decode to the schedule it claims to be — same
            # treatment as byte damage: quarantine and rebuild.
            self.store._quarantine(
                self.store.path_for(store_key), "semantic"
            )
            if OBS.enabled:
                OBS.metrics.counter(
                    "repro_store_semantic_rejects_total",
                    store=self.store.name,
                    error=type(exc).__name__,
                ).inc()
            return None
        return sched

    def _insert(self, key: ScheduleKey, sched: Schedule, *, hit: bool) -> None:
        """LRU-insert under the lock, counting the lookup outcome."""
        with self._lock:
            if hit:
                self._hits += 1
            self._entries[key] = sched
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def disk_stats(self):
        """The disk tier's :class:`~repro.store.disk.StoreStats`."""
        return self.store.stats()


def open_schedule_store(
    root: Union[str, Path],
    *,
    maxsize: int = 512,
    fsync: bool = False,
) -> PersistentScheduleCache:
    """Open (creating if needed) a disk-backed schedule cache at ``root``."""
    return PersistentScheduleCache(
        DiskStore(root, fsync=fsync, name="schedule"), maxsize=maxsize
    )
