"""repro.store — the crash-safe durability layer (DESIGN.md §13).

The tuning pipeline's results used to live and die with the process:
:class:`~repro.core.cache.ScheduleCache` was in-process LRU only, and an
interrupted sweep lost every completed point.  This package is the
persistence backbone the selection-configuration story assumes — the
offline tuning database the survey literature treats as table stakes
for production selection systems — built with the same fail-safe
discipline :mod:`repro.faults` and :mod:`repro.recovery` apply to the
simulated fabric:

* :class:`DiskStore` (:mod:`repro.store.disk`) — a content-addressed
  directory of checksummed JSON entries with atomic temp-file+rename
  writes, a versioned format, and quarantine-instead-of-crash handling
  of every kind of damage;
* :class:`PersistentScheduleCache` (:mod:`repro.store.schedules`) — the
  schedule cache extended with a disk tier, fingerprint-verified on
  read, sharable across processes via advisory locking;
* :class:`JournalWriter` / :func:`read_journal`
  (:mod:`repro.store.journal`) — the crash-safe JSONL journal behind
  resumable sweeps (``repro-sweep --resume``);
* :class:`FileLock` (:mod:`repro.store.locking`) — advisory flock so
  concurrent ``--jobs`` workers and future server processes share one
  store directory.

The one-line rule of the whole layer: **damage is a miss, not an
error** — a corrupted entry or torn journal line costs a rebuild or a
re-run of one point, never a crashed run.
"""

from __future__ import annotations

from .disk import FORMAT_VERSION, DiskStore, StoreStats
from .journal import LINE_VERSION, JournalWriter, journal_header, read_journal
from .locking import FileLock, have_flock
from .schedules import (
    PersistentScheduleCache,
    open_schedule_store,
    schedule_store_key,
)

__all__ = [
    "FORMAT_VERSION",
    "LINE_VERSION",
    "DiskStore",
    "StoreStats",
    "JournalWriter",
    "read_journal",
    "journal_header",
    "FileLock",
    "have_flock",
    "PersistentScheduleCache",
    "open_schedule_store",
    "schedule_store_key",
]
