"""Content-addressed durable store: atomic, checksummed, self-healing.

One :class:`DiskStore` is a directory of JSON entries addressed by a
caller-chosen key string (the store hashes it to a filename, so keys may
contain any characters).  The design rules, in failure-first order:

* **Atomic writes.**  Every entry is written to a ``*.tmp`` file in the
  same directory and published with ``os.replace`` — a reader sees the
  old entry or the new one, never a torn hybrid, and a crash mid-write
  leaves only a temp file that the next scan sweeps into quarantine.
* **Checksummed reads.**  Each entry embeds a SHA-256 over its canonical
  payload bytes and the key it serves.  A bit-flipped, truncated, or
  mis-filed entry fails verification on read.
* **Quarantine, never crash.**  Damage is an availability event, not an
  error: a bad entry is moved to ``quarantine/`` (with the reason in its
  filename) and the lookup reports a miss, so the caller rebuilds the
  content and the store heals by write-through.  Corruption therefore
  costs one rebuild — it cannot take down a run.
* **Versioned format.**  Entries carry ``format``; an entry from an
  incompatible version quarantines like damage (old stores degrade to
  cold caches instead of crashing new code).  See CONTRIBUTING.md for
  the bump protocol.
* **Advisory locking.**  Compound operations (orphan sweeps, quarantine
  moves) hold the store's :class:`~repro.store.locking.FileLock`, so
  concurrent sweep workers and a future tuning service share one store
  directory safely.

The payloads are plain JSON dicts; :mod:`repro.store.schedules` layers
the schedule-specific encoding (and fingerprint re-verification) on top.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..errors import StoreError
from ..obs import OBS
from .locking import FileLock

__all__ = ["FORMAT_VERSION", "StoreStats", "DiskStore"]

#: On-disk entry format version.  Bump on any incompatible change to the
#: entry document shape (see CONTRIBUTING.md — old entries then read as
#: quarantined misses, i.e. the store degrades to cold, never crashes).
#: v2: stores may hold ``compiled/…`` entries (pickled
#: :class:`repro.compile.CompiledSchedule` artifacts) alongside
#: ``schedule/…`` entries; v1 stores predate compiled execution, so
#: their schedules must be re-persisted to sit next to fresh artifacts.
FORMAT_VERSION = 2

_ENTRY_SUFFIX = ".json"
_TMP_MARKER = ".tmp"


def _canonical(payload: Dict) -> str:
    """The canonical JSON bytes the checksum covers."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(key: str, payload_canonical: str) -> str:
    h = hashlib.sha256()
    h.update(key.encode())
    h.update(b"\x00")
    h.update(payload_canonical.encode())
    return h.hexdigest()


@dataclass(frozen=True)
class StoreStats:
    """Immutable snapshot of one :class:`DiskStore`'s counters.

    Same ``to_dict()`` stats protocol as
    :class:`~repro.core.cache.CacheStats` and
    :class:`~repro.bench.sweep.SweepStats`, so store accounting drops
    uniformly into :mod:`repro.obs` snapshots and JSON reports.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corruptions: int = 0

    @property
    def lookups(self) -> int:
        """Total reads attempted (hits + misses; quarantines are misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when never used)."""
        n = self.lookups
        return self.hits / n if n else 0.0

    def to_dict(self) -> Dict[str, float]:
        """Counters as a plain dict, for metrics snapshots and reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corruptions": self.corruptions,
            "hit_rate": self.hit_rate,
        }


class DiskStore:
    """A directory of checksummed JSON entries addressed by key string.

    ``fsync=False`` (the default) makes writes atomic against *process*
    death — the publish is an ``os.replace`` of fully written bytes, and
    the OS page cache carries them to disk.  ``fsync=True`` additionally
    survives machine/kernel crashes at a significant per-write cost;
    sweeps and benchmarks use the default, a long-lived tuning service
    should opt in.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        fsync: bool = False,
        name: str = "store",
    ) -> None:
        self.root = Path(root)
        self.fsync = fsync
        self.name = name
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._corruptions = 0
        self.entries_dir = self.root / "entries"
        self.quarantine_dir = self.root / "quarantine"
        try:
            self.entries_dir.mkdir(parents=True, exist_ok=True)
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StoreError(f"cannot create store at {self.root}: {exc}")
        self.lock = FileLock(self.root / ".lock")
        self.sweep_orphans()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """The entry file a key maps to (exists only after a put)."""
        digest = hashlib.sha256(key.encode()).hexdigest()
        return self.entries_dir / f"{digest}{_ENTRY_SUFFIX}"

    def __len__(self) -> int:
        return sum(1 for _ in self.entries_dir.glob(f"*{_ENTRY_SUFFIX}"))

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    # ------------------------------------------------------------------
    # Read path: verify or quarantine
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict]:
        """The payload stored under ``key``, or ``None`` on miss.

        Damage of any kind — unreadable file, malformed JSON, wrong
        format version, key mismatch, checksum failure — quarantines the
        entry and reports a miss; it never raises.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self._record_lookup(hit=False)
            return None
        except (OSError, UnicodeDecodeError):
            # UnicodeDecodeError is bit-flip damage in the middle of a
            # UTF-8 sequence — found by the crash-storm soak; it must be
            # a quarantined miss like every other kind of corruption.
            self._quarantine(path, "unreadable")
            self._record_lookup(hit=False)
            return None
        payload = self._verify(path, key, text)
        self._record_lookup(hit=payload is not None)
        return payload

    def _verify(self, path: Path, key: str, text: str) -> Optional[Dict]:
        """Parse + verify one entry document; quarantine on any damage."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            self._quarantine(path, "malformed")
            return None
        if not isinstance(doc, dict):
            self._quarantine(path, "malformed")
            return None
        if doc.get("format") != FORMAT_VERSION:
            self._quarantine(path, f"format-{doc.get('format')!r}")
            return None
        payload = doc.get("payload")
        if doc.get("key") != key or not isinstance(payload, dict):
            self._quarantine(path, "key-mismatch")
            return None
        if _checksum(key, _canonical(payload)) != doc.get("sha256"):
            self._quarantine(path, "checksum")
            return None
        return payload

    def _record_lookup(self, *, hit: bool) -> None:
        if hit:
            self._hits += 1
        else:
            self._misses += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_store_lookups_total",
                store=self.name,
                outcome="hit" if hit else "miss",
            ).inc()

    # ------------------------------------------------------------------
    # Write path: temp file + rename
    # ------------------------------------------------------------------

    def put(self, key: str, payload: Dict) -> Path:
        """Atomically write ``payload`` under ``key``; returns the path.

        The payload must be JSON-serializable.  Concurrent writers of the
        same key are safe without the lock: both write complete
        documents and ``os.replace`` publishes whichever lands last.
        """
        canonical = _canonical(payload)
        doc = _canonical(
            {
                "format": FORMAT_VERSION,
                "key": key,
                "payload": json.loads(canonical),
                "sha256": _checksum(key, canonical),
            }
        )
        path = self.path_for(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}{_TMP_MARKER}")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(doc)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise StoreError(f"cannot write store entry {path}: {exc}")
        self._writes += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_store_writes_total", store=self.name
            ).inc()
        return path

    # ------------------------------------------------------------------
    # Quarantine and maintenance
    # ------------------------------------------------------------------

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a damaged file aside (never delete — it is evidence)."""
        self._corruptions += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_store_corruption_total",
                store=self.name,
                reason=reason.split("-")[0],
            ).inc()
        with self.lock:
            for attempt in range(10_000):
                dest = self.quarantine_dir / f"{path.name}.{reason}.{attempt}"
                if dest.exists():
                    continue
                try:
                    os.replace(path, dest)
                except FileNotFoundError:
                    pass  # another process quarantined it first — done
                except OSError:
                    # Quarantine must never crash a run; leave the file,
                    # the entry still reads as a miss this lookup.
                    pass
                return

    def sweep_orphans(self) -> int:
        """Quarantine crash-leftover temp files; returns how many.

        A ``*.tmp`` file exists only between a writer starting and its
        ``os.replace`` — any found at open time belong to a writer that
        died mid-publish.
        """
        swept = 0
        with self.lock:
            for tmp in self.entries_dir.glob(f"*{_TMP_MARKER}"):
                self._quarantine(tmp, "orphan-tmp")
                swept += 1
        return swept

    def quarantined(self) -> List[Path]:
        """The damaged files moved aside so far (oldest first)."""
        return sorted(self.quarantine_dir.iterdir())

    def keys_on_disk(self) -> Iterator[Tuple[Path, Optional[str]]]:
        """Yield ``(entry_path, key)`` for every entry file.

        The key is read from the entry document; unreadable or
        malformed documents yield ``key=None`` (use :meth:`get` to
        quarantine them).
        """
        for path in sorted(self.entries_dir.glob(f"*{_ENTRY_SUFFIX}")):
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
                key = doc.get("key") if isinstance(doc, dict) else None
            except (OSError, json.JSONDecodeError):
                key = None
            yield path, key

    def clear(self) -> None:
        """Delete every entry (quarantine is kept) and reset counters."""
        with self.lock:
            for path in self.entries_dir.glob(f"*{_ENTRY_SUFFIX}"):
                try:
                    path.unlink()
                except OSError:
                    pass
        self._hits = self._misses = self._writes = self._corruptions = 0

    def stats(self) -> StoreStats:
        """Frozen snapshot of the hit/miss/write/corruption counters."""
        return StoreStats(
            hits=self._hits,
            misses=self._misses,
            writes=self._writes,
            corruptions=self._corruptions,
        )
