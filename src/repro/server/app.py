"""The tuning service: asyncio HTTP endpoints over the tuner + stores.

:class:`TuningService` is the long-running daemon the ROADMAP's
"schedule-tuning-as-a-service" item asks for — the balsam-style shape
where many client processes share one tuning database instead of each
re-running ``repro-tune``.  Pure stdlib: :func:`asyncio.start_server`
plus a hand-rolled HTTP/1.1 exchange (one request per connection,
``Connection: close``), so the service adds no dependency weight.

The endpoint surface (DESIGN.md §17 walks each one):

``GET /``
    Service descriptor: machine, grid, live counters (``sweeps_run``,
    ``coalesced``, ``inflight``) — the smoke driver polls ``inflight``
    to make its coalescing assertions race-free.
``GET /select?collective=&p=&nbytes=``
    The tuned ``(algorithm, k)`` for a query point, answered from the
    service's selection table — warm-started at boot from a committed
    selection-config grid, so the first query is already fast.
``GET /schedule?...``
    Content-addressed compiled artifact: by build parameters or by
    ``fingerprint=`` (source-schedule fingerprint or the 16-hex prefix
    used in store keys).  Served through the same
    :class:`~repro.store.schedules.PersistentScheduleCache` /
    :class:`~repro.compile.cache.PersistentCompiledCache` pair the
    sweep engine uses, so a disk store populated by one feeds the other.
``POST /tune``
    Run (or join) an authoritative sweep for one collective.  Requests
    are **coalesced single-flight**: concurrent tunes that hash to the
    same :func:`~repro.bench.sweep.sweep_fingerprint` share one sweep —
    the first becomes the leader and runs it in an executor thread; the
    rest await the leader's future and report ``outcome="coalesced"``.
``GET /metrics``
    The :mod:`repro.obs` Prometheus exposition, including the service's
    own ``repro_server_requests_total`` counters.
``GET /config``
    The exported MPICH-style selection-config artifact
    (:class:`~repro.server.config.SelectionConfig`), regenerated from
    the service's current merged sweeps after every ``/tune``.

Errors travel as JSON ``{"error": <class name>, "message": ...}`` so
:class:`~repro.server.client.TuningClient` can re-raise
:class:`~repro.errors.SelectionError` ("no rule covers this point")
distinctly from :class:`~repro.errors.ServerError` ("the service is
broken or misused").
"""

from __future__ import annotations

import asyncio
import base64
import json
import pickle
import threading
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlsplit

from ..compile.cache import (
    CompiledCache,
    compiled_store_key,
    open_compiled_store,
)
from ..core.cache import ScheduleCache
from ..core.registry import info
from ..errors import ReproError, SelectionError, ServerError
from ..obs import Obs, get_obs
from ..selection.tuner import (
    DEFAULT_COLLECTIVES,
    SweepResult,
    sweep_collective,
    sweep_points,
)
from ..store.schedules import open_schedule_store
from .config import SelectionConfig, config_from_sweeps

__all__ = ["TuningService", "ServerHandle", "serve_background"]

#: Error classes a response may name; the client re-raises by this name
#: so selection misses stay :class:`SelectionError` across the wire.
_WIRE_ERRORS = {"SelectionError": SelectionError, "ServerError": ServerError}

#: (collective, algorithm, p, k, root) — what a fingerprint resolves to.
_ScheduleParams = Tuple[str, str, int, Optional[int], int]


class _HttpReply(Exception):
    """Internal control flow: an endpoint's non-200 JSON response."""

    def __init__(self, status: int, error: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.error = error
        self.message = message


class TuningService:
    """One tuning daemon: selection table + stores behind HTTP.

    Construction is synchronous and does the expensive part up front:
    it sweeps every collective over the size grid (warm-started from
    ``grid`` — a :class:`~repro.server.config.SelectionConfig` or a
    path to one — so a committed artifact makes boot nearly free) and
    distills the selection table.  :meth:`start` then binds the socket;
    requests mutate the table only through ``/tune``'s merge.

    ``store`` (a directory path) backs schedules and compiled artifacts
    with the PR 6 disk tiers — the content-addressed ``/schedule``
    endpoint then survives restarts, and the fingerprint index is
    rebuilt from the store's ``compiled/…`` keys at boot.  Without it
    the service runs on in-process LRUs.

    ``obs`` scopes the metrics registry ``/metrics`` exposes (default:
    the process-global :data:`repro.obs.OBS`).  The service's own
    request counters are recorded unconditionally — a tuning daemon's
    traffic should be visible without globally enabling instrumentation.
    """

    def __init__(
        self,
        machine,
        sizes: Sequence[int],
        *,
        collectives: Sequence[str] = DEFAULT_COLLECTIVES,
        store=None,
        grid=None,
        jobs: int = 0,
        engine: str = "auto",
        compiled: bool = True,
        check: bool = False,
        obs: Optional[Obs] = None,
        fsync: bool = False,
    ) -> None:
        from ..simnet.machines import resolve as resolve_machine

        self.machine = resolve_machine(machine)
        self.sizes: List[int] = sorted(set(int(s) for s in sizes))
        if not self.sizes:
            raise ServerError("a tuning service needs a non-empty size grid")
        self.collectives: Tuple[str, ...] = tuple(collectives)
        self.jobs = jobs
        self.engine = engine
        self.compiled = compiled
        self.check = check
        self.obs = get_obs(obs)
        self.store_root = str(store) if store is not None else None
        if store is not None:
            self.schedules = open_schedule_store(store, fsync=fsync)
            self.compiled_cache = open_compiled_store(store, fsync=fsync)
        else:
            self.schedules = ScheduleCache()
            self.compiled_cache = CompiledCache()
        # fingerprint (full, and the 16-hex store-key prefix) → params
        self._fingerprints: Dict[str, _ScheduleParams] = {}
        self._index_store()
        self.warm_started = False
        priors = None
        if grid is not None:
            cfg = (
                grid if isinstance(grid, SelectionConfig)
                else SelectionConfig.load(grid)
            )
            priors = cfg.sweep_priors()
            self.warm_started = True
        # The boot sweep: every collective over the grid, points covered
        # by the committed artifact replayed instead of simulated.
        self._sweeps: Dict[str, SweepResult] = {}
        for collective in self.collectives:
            self._sweeps[collective] = sweep_collective(
                collective, self.machine, self.sizes,
                jobs=self.jobs, check=self.check,
                compiled=self.compiled, engine=self.engine, priors=priors,
            )
        self._rebuild()
        self.sweeps_run = 0
        self.coalesced = 0
        self._inflight: Dict[str, "asyncio.Future[SweepResult]"] = {}
        self._sweep_lock = threading.Lock()
        self._server: Optional[asyncio.AbstractServer] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # State assembly
    # ------------------------------------------------------------------

    def _rebuild(self) -> None:
        """Re-distill config + table from the current merged sweeps."""
        self.config = config_from_sweeps(
            self.machine, self.sizes, self._sweeps
        )
        self.table = self.config.table

    def _index_store(self) -> None:
        """Rebuild the fingerprint → params index from ``compiled/…`` keys.

        Store keys carry the 16-hex source-fingerprint prefix as their
        last segment (:func:`repro.compile.cache.compiled_store_key`),
        which is exactly enough to answer ``/schedule?fingerprint=``
        after a restart without loading a single artifact.
        """
        keys = getattr(self.schedules, "store", None)
        if keys is None:
            return
        for _path, key in keys.keys_on_disk():
            if not key:
                continue
            parts = key.split("/")
            if len(parts) != 7 or parts[0] != "compiled":
                continue
            try:
                params: _ScheduleParams = (
                    parts[1],
                    parts[2],
                    int(parts[3][len("p="):]),
                    None if parts[4] == "k=None"
                    else int(parts[4][len("k="):]),
                    # Non-rooted schedules record root=None in the key;
                    # their builders take root=0.
                    0 if parts[5] == "root=None"
                    else int(parts[5][len("root="):]),
                )
            except ValueError:
                continue
            self._fingerprints[parts[6]] = params

    def _register(self, schedule) -> str:
        """Index a served schedule under its full and prefix fingerprints."""
        fp = schedule.fingerprint()
        params: _ScheduleParams = (
            schedule.collective, schedule.algorithm, schedule.nranks,
            schedule.k, schedule.root or 0,
        )
        self._fingerprints[fp] = params
        self._fingerprints[fp[:16]] = params
        return fp

    # ------------------------------------------------------------------
    # Endpoints (each returns the JSON-ready response payload)
    # ------------------------------------------------------------------

    def describe(self) -> Dict:
        """The ``GET /`` service descriptor (also the CLI's boot banner)."""
        return {
            "service": "repro-tuning-service",
            "machine": self.machine.name,
            "nranks": self.machine.nranks,
            "sizes": self.sizes,
            "collectives": list(self.collectives),
            "engine": self.engine,
            "jobs": self.jobs,
            "store": self.store_root,
            "warm_started": self.warm_started,
            "sweeps_run": self.sweeps_run,
            "coalesced": self.coalesced,
            "inflight": len(self._inflight),
        }

    def _ep_select(self, query: Dict[str, str]) -> Dict:
        p = int(query.get("p", self.machine.nranks))
        choice = self.table.select(
            _require(query, "collective"), p, int(_require(query, "nbytes"))
        )
        return {
            "collective": query["collective"],
            "nranks": p,
            "nbytes": int(query["nbytes"]),
            "algorithm": choice.algorithm,
            "k": choice.k,
        }

    def _ep_schedule(self, query: Dict[str, str]) -> Dict:
        if "fingerprint" in query:
            fp = query["fingerprint"]
            params = self._fingerprints.get(fp) or self._fingerprints.get(
                fp[:16]
            )
            if params is None:
                raise _HttpReply(
                    404, "ServerError",
                    f"no schedule is indexed under fingerprint {fp!r}",
                )
            collective, algorithm, p, k, root = params
        else:
            collective = _require(query, "collective")
            algorithm = _require(query, "algorithm")
            p = int(query.get("p", self.machine.nranks))
            k = int(query["k"]) if query.get("k") not in (None, "None") \
                else None
            root = int(query.get("root", 0))
        # Fixed-radix schedules record their structural radix (e.g.
        # recursive doubling's k=2) but their builders refuse a k
        # argument — normalize so a fingerprint indexed from a built
        # schedule resolves back through the same builder.
        if k is not None and not info(collective, algorithm).takes_k:
            k = None
        schedule, _hit = self.schedules.get_or_build(
            collective, algorithm, p, k=k, root=root
        )
        compiled, _chit = self.compiled_cache.get_or_compile(schedule)
        fp = self._register(schedule)
        return {
            "collective": schedule.collective,
            "algorithm": schedule.algorithm,
            "p": schedule.nranks,
            "k": schedule.k,
            "root": schedule.root or 0,
            "source_fingerprint": fp,
            "compiled_fingerprint": compiled.fingerprint(),
            "store_key": compiled_store_key(schedule),
            "schedule_pickle": _b64(schedule),
            "compiled_pickle": _b64(compiled),
        }

    async def _ep_tune(self, body: Dict) -> Dict:
        collective = body.get("collective")
        if not collective:
            raise _HttpReply(
                400, "ServerError", 'POST /tune needs {"collective": ...}'
            )
        points = sweep_points(collective, self.machine, self.sizes)
        from ..bench.sweep import sweep_fingerprint

        fp = sweep_fingerprint(points, self.machine)
        fut = self._inflight.get(fp)
        if fut is not None:
            self.coalesced += 1
            sweep = await fut
            outcome = "coalesced"
        else:
            loop = asyncio.get_running_loop()
            fut = loop.create_future()
            self._inflight[fp] = fut
            try:
                sweep = await loop.run_in_executor(
                    None, self._run_sweep, collective
                )
            except BaseException as exc:
                fut.set_exception(exc)
                fut.exception()  # a leaderless error must not warn
                raise
            else:
                fut.set_result(sweep)
            finally:
                self._inflight.pop(fp, None)
            self.sweeps_run += 1
            self._sweeps[collective] = sweep
            self._rebuild()
            outcome = "swept"
        winners = {
            str(n): {
                "algorithm": sweep.best(n).choice.algorithm,
                "k": sweep.best(n).choice.k,
            }
            for n in self.sizes
        }
        return {
            "collective": collective,
            "fingerprint": fp,
            "outcome": outcome,
            "winners": winners,
        }

    def _run_sweep(self, collective: str) -> SweepResult:
        """The leader's authoritative sweep (runs in an executor thread).

        Deliberately *without* priors: ``/tune`` is the "re-measure now"
        verb, so it simulates every point fresh and its result replaces
        the collective's boot sweep.  Serialized by a lock — the single
        flight already ensures identical queries share one sweep; the
        lock keeps *different* collectives from racing the process-wide
        caches underneath.
        """
        with self._sweep_lock:
            return sweep_collective(
                collective, self.machine, self.sizes,
                jobs=self.jobs, check=self.check,
                compiled=self.compiled, engine=self.engine,
            )

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        """One connection: parse, dispatch, respond, close."""
        status, ctype, payload, endpoint = 500, "application/json", b"", "?"
        try:
            method, target, headers = await _read_head(reader)
            length = int(headers.get("content-length", "0"))
            body = await reader.readexactly(length) if length else b""
            url = urlsplit(target)
            endpoint = url.path
            query = {
                key: values[-1]
                for key, values in parse_qs(url.query).items()
            }
            status, ctype, payload = await self._dispatch(
                method, url.path, query, body
            )
        except _HttpReply as reply:
            status = reply.status
            payload = _error_body(reply.error, reply.message)
        except SelectionError as exc:
            status, payload = 400, _error_body("SelectionError", str(exc))
        except ReproError as exc:
            status, payload = 400, _error_body(type(exc).__name__, str(exc))
        except (asyncio.IncompleteReadError, ConnectionError, ValueError) \
                as exc:
            status = 400
            payload = _error_body("ServerError", f"malformed request: {exc}")
        except Exception as exc:  # noqa: BLE001 — a request must not
            # take the daemon down; the failure travels to the client.
            status = 500
            payload = _error_body("ServerError", f"internal error: {exc}")
        self.obs.metrics.counter(
            "repro_server_requests_total",
            endpoint=endpoint, status=str(status),
        ).inc()
        try:
            writer.write(_response(status, ctype, payload))
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except ConnectionError:
            pass  # client went away mid-reply; nothing to salvage

    async def _dispatch(
        self, method: str, path: str, query: Dict[str, str], body: bytes
    ) -> Tuple[int, str, bytes]:
        """Route one parsed request to its endpoint."""
        if path == "/tune":
            if method != "POST":
                raise _HttpReply(405, "ServerError", "/tune is POST-only")
            try:
                parsed = json.loads(body.decode("utf-8") or "{}")
            except json.JSONDecodeError as exc:
                raise _HttpReply(
                    400, "ServerError", f"malformed /tune body: {exc}"
                ) from exc
            return 200, "application/json", _json(await self._ep_tune(parsed))
        if method != "GET":
            raise _HttpReply(
                405, "ServerError", f"{method} is not supported on {path}"
            )
        if path == "/":
            return 200, "application/json", _json(self.describe())
        if path == "/select":
            return 200, "application/json", _json(self._ep_select(query))
        if path == "/schedule":
            return 200, "application/json", _json(self._ep_schedule(query))
        if path == "/metrics":
            text = self.obs.prometheus()
            return 200, "text/plain; version=0.0.4", text.encode("utf-8")
        if path == "/config":
            return (
                200, "application/json",
                self.config.to_json().encode("utf-8"),
            )
        raise _HttpReply(404, "ServerError", f"no such endpoint: {path}")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def url(self) -> str:
        """The service's base URL (valid after :meth:`start`)."""
        if self.port is None:
            raise ServerError("the service has not been started")
        return f"http://{self.host}:{self.port}"

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "TuningService":
        """Bind the listening socket (``port=0`` picks an ephemeral one)."""
        self._server = await asyncio.start_server(self._handle, host, port)
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        return self

    async def stop(self) -> None:
        """Close the listening socket and drain open connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


class ServerHandle:
    """A background tuning service: thread + loop + ready-to-query URL.

    Context-manager friendly (the README quickstart runs inside a
    ``with`` block); :meth:`close` is idempotent.
    """

    def __init__(
        self,
        service: TuningService,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        self.service = service
        self._thread = thread
        self._loop = loop

    @property
    def url(self) -> str:
        """The served base URL, e.g. ``http://127.0.0.1:43817``."""
        return self.service.url

    def close(self) -> None:
        """Stop the loop, join the thread, release the socket."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve_background(machine, sizes: Sequence[int], **kwargs) -> ServerHandle:
    """Boot a :class:`TuningService` on a daemon thread; return its handle.

    The in-process path tests and executable docs use: construction
    (and therefore the boot sweep) happens synchronously in the caller,
    then the socket binds to an ephemeral port on a fresh event loop in
    a background thread — by the time this returns, ``handle.url``
    answers requests.  ``kwargs`` pass through to :class:`TuningService`.
    """
    service = TuningService(machine, sizes, **kwargs)
    ready = threading.Event()
    loops: List[asyncio.AbstractEventLoop] = []

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop.run_until_complete(service.start())
        loops.append(loop)
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(service.stop())
            loop.run_until_complete(loop.shutdown_default_executor())
            loop.close()

    thread = threading.Thread(
        target=run, name="repro-serve", daemon=True
    )
    thread.start()
    ready.wait()
    return ServerHandle(service, thread, loops[0])


# ----------------------------------------------------------------------
# Wire helpers
# ----------------------------------------------------------------------


def _require(query: Dict[str, str], name: str) -> str:
    """A mandatory query parameter, or a 400 naming what's missing."""
    value = query.get(name)
    if value is None:
        raise _HttpReply(
            400, "ServerError", f"missing query parameter {name!r}"
        )
    return value


def _b64(obj) -> str:
    """Pickle an artifact for transport (base64, like the disk store)."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _json(payload: Dict) -> bytes:
    return json.dumps(payload, indent=2).encode("utf-8")


def _error_body(error: str, message: str) -> bytes:
    return _json({"error": error, "message": message})


def _response(status: int, ctype: str, payload: bytes) -> bytes:
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
               405: "Method Not Allowed", 500: "Internal Server Error"}
    head = (
        f"HTTP/1.1 {status} {reasons.get(status, 'Error')}\r\n"
        f"Content-Type: {ctype}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + payload


async def _read_head(reader) -> Tuple[str, str, Dict[str, str]]:
    """Parse the request line + headers of one HTTP/1.1 request."""
    raw = await reader.readuntil(b"\r\n\r\n")
    lines = raw.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise _HttpReply(
            400, "ServerError", f"malformed request line: {lines[0]!r}"
        ) from exc
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if ":" in line:
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    return method, target, headers
