"""The MPICH-style selection-configuration artifact (§VI-G, as a file).

The paper's end deliverable is a *selection configuration*: a file an
MPI runtime consumes to pick the best generalized algorithm and radix
per ``(collective, p, nbytes)``.  :class:`~repro.selection.table
.SelectionTable` is the lookup mechanism; this module is the shippable
**artifact** around it — a versioned JSON document that additionally
carries the sweep timings the table was distilled from, which is what
makes it round-trippable:

* **back into the tuner as priors** — :meth:`SelectionConfig
  .sweep_priors` feeds :func:`repro.selection.tuner.tune`'s ``priors=``,
  so re-tuning over a covered grid replays recorded times instead of
  re-simulating and emits a bit-identical table (the tuning service's
  warm start);
* **into the online selector** — :meth:`SelectionConfig.priors_for`
  yields the ``{Choice: seconds}`` mapping
  :class:`repro.adapt.OnlineSelector` (and
  :func:`repro.adapt.run_adaptive`'s ``priors=``) warm-start from,
  replacing the healthy sweep an adaptive loop would otherwise run.

The document shape (see DESIGN.md §17 for a worked example)::

    {
      "format": "repro-selection-config",
      "version": 1,
      "machine": "reference-8", "nranks": 8,
      "sizes": [1024, 65536],
      "collectives": ["allreduce"],
      "table":   { ... SelectionTable.to_json payload ... },
      "timings": [ {"collective": ..., "algorithm": ..., "k": ...,
                    "root": 0, "nbytes": ..., "time": ...}, ... ]
    }

``version`` gates compatibility the way
:data:`repro.store.disk.FORMAT_VERSION` does for store entries: an
artifact from a different version refuses to load rather than silently
mis-tuning.  Times survive the JSON round trip exactly (shortest-repr
floats), so "bit-identical" below means literally identical bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import SelectionError
from ..selection.table import Choice, SelectionTable
from ..selection.tuner import (
    DEFAULT_COLLECTIVES,
    SweepResult,
    sweep_collective,
    table_from_sweeps,
)

__all__ = [
    "CONFIG_FORMAT",
    "CONFIG_VERSION",
    "SelectionConfig",
    "config_from_sweeps",
    "build_config",
]

#: The ``format`` discriminator every artifact carries.
CONFIG_FORMAT = "repro-selection-config"

#: Artifact schema version; bump on any incompatible document change
#: (old artifacts then refuse to load instead of silently mis-tuning).
CONFIG_VERSION = 1

#: The key :meth:`SelectionConfig.sweep_priors` maps from — the same
#: identity tuple :func:`repro.selection.tuner.sweep_collective` keys
#: its ``priors=`` lookups on.
PriorKey = Tuple[str, str, Optional[int], int, int]


@dataclass
class SelectionConfig:
    """One exported selection configuration: table + provenance timings.

    ``table`` answers queries (first-match-wins, exactly the in-process
    tuner's product); ``timings`` records every ``(choice, nbytes)``
    simulation the table was distilled from, which is what the two
    warm-start round trips consume.  ``machine``/``nranks``/``sizes``/
    ``collectives`` pin the grid the artifact describes.
    """

    table: SelectionTable
    machine: str
    nranks: int
    sizes: List[int]
    collectives: Tuple[str, ...]
    timings: List[Dict] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def select(self, collective: str, nranks: int, nbytes: int) -> Choice:
        """The tuned choice for a query point (delegates to the table)."""
        return self.table.select(collective, nranks, nbytes)

    def sweep_priors(self) -> Dict[PriorKey, float]:
        """Recorded timings keyed for the tuner's ``priors=``.

        Feeding this to :func:`repro.selection.tuner.tune` (or
        :func:`~repro.selection.tuner.sweep_collective`) makes every
        covered point replay its recorded time instead of re-simulating
        — winners are bit-identical because healthy simulation is
        deterministic, and only uncovered points (a widened grid, a new
        collective) cost simulator time.
        """
        return {
            (
                row["collective"], row["algorithm"], row["k"],
                row["root"], row["nbytes"],
            ): float(row["time"])
            for row in self.timings
        }

    def priors_for(self, collective: str, nbytes: int) -> Dict[Choice, float]:
        """The ``{Choice: seconds}`` warm start for one query point.

        Exactly the mapping :class:`repro.adapt.OnlineSelector` takes as
        its ``priors`` (and :func:`repro.adapt.run_adaptive` as
        ``priors=``): every candidate ``(algorithm, k)`` arm with its
        recorded healthy time at ``nbytes``.  Raises
        :class:`~repro.errors.SelectionError` when the artifact has no
        timings for the point — an empty warm start would silently
        degrade to uniform exploration.
        """
        priors = {
            Choice(row["algorithm"], row["k"]): float(row["time"])
            for row in self.timings
            if row["collective"] == collective and row["nbytes"] == nbytes
        }
        if not priors:
            raise SelectionError(
                f"selection config for {self.machine!r} has no timings "
                f"for {collective} at n={nbytes} "
                f"(recorded sizes: {self.sizes})"
            )
        return priors

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the versioned artifact document."""
        payload = {
            "format": CONFIG_FORMAT,
            "version": CONFIG_VERSION,
            "machine": self.machine,
            "nranks": self.nranks,
            "sizes": list(self.sizes),
            "collectives": list(self.collectives),
            "table": json.loads(self.table.to_json()),
            "timings": self.timings,
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "SelectionConfig":
        """Parse :meth:`to_json` output, refusing foreign documents.

        A wrong ``format`` or ``version`` raises
        :class:`~repro.errors.SelectionError` — version skew must fail
        loudly, not replay timings recorded under different semantics.
        The embedded table revalidates every rule against the registry,
        exactly as :meth:`SelectionTable.from_json` does.
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SelectionError(
                f"malformed selection-config JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict) or payload.get("format") != CONFIG_FORMAT:
            raise SelectionError(
                f"not a selection-config artifact (format="
                f"{payload.get('format')!r} if it is an object; expected "
                f"{CONFIG_FORMAT!r})"
            )
        if payload.get("version") != CONFIG_VERSION:
            raise SelectionError(
                f"selection-config version {payload.get('version')!r} is "
                f"incompatible with this build (expected {CONFIG_VERSION})"
            )
        timings = payload.get("timings", [])
        for row in timings:
            missing = {
                "collective", "algorithm", "k", "root", "nbytes", "time"
            } - set(row)
            if missing:
                raise SelectionError(
                    f"selection-config timing row is missing "
                    f"{sorted(missing)}: {row}"
                )
        return cls(
            table=SelectionTable.from_json(json.dumps(payload["table"])),
            machine=str(payload.get("machine", "unknown")),
            nranks=int(payload.get("nranks", 0)),
            sizes=[int(n) for n in payload.get("sizes", [])],
            collectives=tuple(payload.get("collectives", [])),
            timings=timings,
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the artifact to ``path`` (see :meth:`to_json`)."""
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SelectionConfig":
        """Read an artifact previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable summary (the CLI's and smoke driver's dump)."""
        return (
            f"selection config: machine={self.machine} p={self.nranks} "
            f"sizes={self.sizes} collectives={list(self.collectives)} "
            f"({len(self.timings)} recorded timings)\n"
            + self.table.describe()
        )


def config_from_sweeps(
    machine,
    sizes: Sequence[int],
    sweeps: Mapping[str, SweepResult],
    *,
    name: Optional[str] = None,
) -> SelectionConfig:
    """Assemble the artifact from already-run per-collective sweeps.

    The table comes from :func:`repro.selection.tuner.table_from_sweeps`
    — the same merge the one-shot tuner applies, so the artifact's table
    is bit-identical to ``tune()`` over the same sweeps.  Every sweep
    entry becomes one timing row.  This is the piece the tuning service
    calls after each ``/tune`` merge; :func:`build_config` wraps it for
    the one-shot offline path.
    """
    from ..simnet.machines import resolve as resolve_machine

    machine = resolve_machine(machine)
    sorted_sizes = sorted(set(int(s) for s in sizes))
    table = table_from_sweeps(
        sweeps, sorted_sizes, name=name or f"tuned-{machine.name}"
    )
    timings: List[Dict] = []
    for collective, sweep in sweeps.items():
        for entry in sweep.entries:
            timings.append({
                "collective": collective,
                "algorithm": entry.choice.algorithm,
                "k": entry.choice.k,
                "root": 0,
                "nbytes": entry.nbytes,
                "time": entry.time,
            })
    return SelectionConfig(
        table=table,
        machine=machine.name,
        nranks=machine.nranks,
        sizes=sorted_sizes,
        collectives=tuple(sweeps),
        timings=timings,
    )


def build_config(
    machine,
    sizes: Sequence[int],
    *,
    collectives: Sequence[str] = DEFAULT_COLLECTIVES,
    jobs: int = 0,
    check: bool = False,
    compiled: bool = True,
    engine: str = "auto",
    priors: Optional[Mapping[PriorKey, float]] = None,
    name: Optional[str] = None,
) -> SelectionConfig:
    """Sweep and export in one step — ``tune()`` that keeps its receipts.

    Runs exactly the sweeps :func:`repro.selection.tuner.tune` would
    (same grid, same enumeration, same knobs — including ``priors`` for
    a warm start from a previous artifact) and returns the
    :class:`SelectionConfig` whose table is bit-identical to that
    ``tune()`` call and whose timings are the sweeps themselves.
    """
    from ..simnet.machines import resolve as resolve_machine

    machine = resolve_machine(machine)
    sorted_sizes = sorted(set(int(s) for s in sizes))
    if not sorted_sizes:
        raise SelectionError("build_config needs at least one message size")
    sweeps: Dict[str, SweepResult] = {}
    for collective in collectives:
        sweeps[collective] = sweep_collective(
            collective, machine, sorted_sizes,
            jobs=jobs, check=check, compiled=compiled, engine=engine,
            priors=priors,
        )
    return config_from_sweeps(machine, sorted_sizes, sweeps, name=name)
