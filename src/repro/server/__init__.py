"""repro.server — schedule tuning as a service (DESIGN.md §17).

The ROADMAP's "schedule-tuning-as-a-service" layer: a stdlib asyncio
HTTP daemon (:class:`TuningService`, booted by ``repro-serve`` or
in-process via :func:`serve_background`) that answers tuned-selection
queries, serves content-addressed compiled schedules from the PR 6 disk
store, coalesces concurrent identical ``/tune`` sweeps into single
flights, exposes :mod:`repro.obs` Prometheus metrics, and exports the
paper's end deliverable — the MPICH-style selection-config artifact
(:class:`SelectionConfig`), which round-trips back into the tuner as
priors and into :class:`repro.adapt.OnlineSelector` warm starts.

Three modules:

* :mod:`repro.server.config` — the versioned artifact
  (:class:`SelectionConfig`, :func:`build_config`,
  :func:`config_from_sweeps`);
* :mod:`repro.server.app` — the service itself (:class:`TuningService`,
  :class:`ServerHandle`, :func:`serve_background`);
* :mod:`repro.server.client` — the blocking stdlib client
  (:class:`TuningClient`) that tests, docs, and
  ``execute(..., select="http://...")`` speak through.
"""

from __future__ import annotations

from .app import ServerHandle, TuningService, serve_background
from .client import TuningClient
from .config import (
    CONFIG_FORMAT,
    CONFIG_VERSION,
    SelectionConfig,
    build_config,
    config_from_sweeps,
)

__all__ = [
    "TuningService",
    "ServerHandle",
    "serve_background",
    "TuningClient",
    "SelectionConfig",
    "CONFIG_FORMAT",
    "CONFIG_VERSION",
    "build_config",
    "config_from_sweeps",
]
