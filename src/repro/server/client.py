"""Stdlib client for the tuning service (`urllib`, no dependencies).

:class:`TuningClient` is the blocking counterpart of
:class:`~repro.server.app.TuningService`: one method per endpoint,
returning the same in-process types the library uses everywhere else —
``select`` gives a :class:`~repro.selection.table.Choice`, ``config``
a :class:`~repro.server.config.SelectionConfig`, ``compiled_schedule``
the unpickled-and-reverified
:class:`~repro.compile.program.CompiledSchedule`.  It is what the
tests, the smoke driver, and ``execute(..., select="http://...")``
speak through.

Error fidelity across the wire: the server encodes failures as
``{"error": <class name>, "message": ...}`` and the client re-raises
:class:`~repro.errors.SelectionError` by name — so "no rule covers this
point" stays catchable as a selection miss on the client side, while
transport problems, malformed responses, and every other service
failure surface as :class:`~repro.errors.ServerError`.
"""

from __future__ import annotations

import base64
import json
import pickle
from pathlib import Path
from typing import Dict, Optional, Union
from urllib import error as urlerror
from urllib import request as urlrequest

from ..errors import SelectionError, ServerError
from ..selection.table import Choice
from .config import SelectionConfig

__all__ = ["TuningClient"]


class TuningClient:
    """A blocking HTTP client bound to one tuning-service base URL.

    ``timeout`` bounds every request (seconds); a server that cannot be
    reached, times out, or answers with something unparseable raises
    :class:`~repro.errors.ServerError`.
    """

    def __init__(self, url: str, *, timeout: float = 30.0) -> None:
        if not url.startswith(("http://", "https://")):
            raise ServerError(
                f"tuning-service URL must be http(s)://..., got {url!r}"
            )
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _request(
        self, path: str, *, body: Optional[Dict] = None
    ) -> bytes:
        """One exchange; re-raises wire errors under their real class."""
        data = json.dumps(body).encode("utf-8") if body is not None else None
        req = urlrequest.Request(
            self.url + path,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET",
        )
        try:
            with urlrequest.urlopen(req, timeout=self.timeout) as resp:
                return resp.read()
        except urlerror.HTTPError as exc:
            raise _wire_error(exc) from exc
        except (urlerror.URLError, OSError) as exc:
            raise ServerError(
                f"cannot reach tuning service at {self.url}: {exc}"
            ) from exc

    def _request_json(
        self, path: str, *, body: Optional[Dict] = None
    ) -> Dict:
        raw = self._request(path, body=body)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServerError(
                f"tuning service returned malformed JSON from {path}: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ServerError(
                f"tuning service returned a non-object from {path}"
            )
        return payload

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def info(self) -> Dict:
        """``GET /`` — the service descriptor with its live counters."""
        return self._request_json("/")

    def select(self, collective: str, nranks: int, nbytes: int) -> Choice:
        """``GET /select`` — the tuned choice for one query point."""
        payload = self._request_json(
            f"/select?collective={collective}&p={nranks}&nbytes={nbytes}"
        )
        return Choice(payload["algorithm"], payload["k"])

    def schedule(
        self,
        collective: Optional[str] = None,
        algorithm: Optional[str] = None,
        *,
        p: Optional[int] = None,
        k: Optional[int] = None,
        root: int = 0,
        fingerprint: Optional[str] = None,
    ) -> Dict:
        """``GET /schedule`` — the raw artifact payload.

        Query by build parameters (``collective`` + ``algorithm``, with
        ``p``/``k``/``root`` optional) or content-addressed by
        ``fingerprint`` (full source fingerprint or its 16-hex store
        prefix).  The payload carries both fingerprints and the base64
        pickles; :meth:`compiled_schedule` decodes and reverifies them.
        """
        if fingerprint is not None:
            query = f"/schedule?fingerprint={fingerprint}"
        else:
            if collective is None or algorithm is None:
                raise ServerError(
                    "schedule() needs collective+algorithm or fingerprint="
                )
            query = f"/schedule?collective={collective}&algorithm={algorithm}"
            if p is not None:
                query += f"&p={p}"
            if k is not None:
                query += f"&k={k}"
            query += f"&root={root}"
        return self._request_json(query)

    def compiled_schedule(self, **kwargs):
        """The decoded ``(schedule, compiled)`` pair for one query.

        Same query surface as :meth:`schedule`; the compiled program is
        re-verified against its source schedule after unpickling, so a
        corrupt wire payload can never execute
        (:class:`~repro.errors.CompileError` on mismatch — the same
        ladder the disk store applies).
        """
        payload = self.schedule(**kwargs)
        try:
            schedule = pickle.loads(
                base64.b64decode(payload["schedule_pickle"])
            )
            compiled = pickle.loads(
                base64.b64decode(payload["compiled_pickle"])
            )
        except Exception as exc:  # noqa: BLE001 — decode failure is a
            # service-contract violation, whatever the pickle module says.
            raise ServerError(
                f"served schedule payload failed to decode: {exc}"
            ) from exc
        compiled.verify(schedule)
        return schedule, compiled

    def tune(self, collective: str) -> Dict:
        """``POST /tune`` — run (or join) the collective's sweep.

        The response's ``outcome`` says which: ``"swept"`` for the
        single-flight leader, ``"coalesced"`` for requests that shared
        the leader's sweep.  ``winners`` maps each grid size to its
        tuned ``{algorithm, k}``.
        """
        return self._request_json("/tune", body={"collective": collective})

    def metrics(self) -> str:
        """``GET /metrics`` — the Prometheus exposition text."""
        return self._request("/metrics").decode("utf-8")

    def config_text(self) -> str:
        """``GET /config`` — the raw selection-config JSON document."""
        return self._request("/config").decode("utf-8")

    def config(self) -> SelectionConfig:
        """``GET /config`` parsed into a :class:`SelectionConfig`."""
        return SelectionConfig.from_json(self.config_text())

    def save_config(self, path: Union[str, Path]) -> Path:
        """Export ``GET /config`` to a file (the CI artifact step)."""
        return self.config().save(path)


def _wire_error(exc: "urlerror.HTTPError") -> Exception:
    """Map an HTTP error body back to the exception class it names."""
    try:
        payload = json.loads(exc.read().decode("utf-8"))
        name = payload.get("error", "ServerError")
        message = payload.get("message", str(exc))
    except Exception:  # noqa: BLE001 — an unparseable error body is
        # itself a server failure; fall through to the generic class.
        name, message = "ServerError", f"HTTP {exc.code}: {exc}"
    if name == "SelectionError":
        return SelectionError(message)
    return ServerError(f"{name}: {message}" if name != "ServerError"
                       else message)
