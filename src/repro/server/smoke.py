"""End-to-end smoke drive of the tuning service, as CI runs it.

``python -m repro.server.smoke -o selection_config.json`` boots a real
``repro-serve`` subprocess on an ephemeral port and walks the whole
service surface the way an external client would — over TCP, across a
process boundary, with nothing shared but the URL:

* ``GET /`` — the descriptor answers and advertises the boot grid;
* ``GET /select`` — a tuned choice comes back and matches ``/config``;
* ``GET /schedule`` — the compiled artifact round-trips (fetch by
  parameters, re-fetch by the returned source fingerprint, verify the
  compiled program against its schedule);
* ``POST /tune`` — N concurrent requests for one *cold* collective
  coalesce into a single sweep (exactly one ``outcome="swept"``, the
  rest ``"coalesced"``);
* ``GET /metrics`` — the Prometheus exposition includes the service's
  own request counters;
* ``GET /config`` — the selection-config artifact exports, loads back,
  and agrees with the served selections; the saved file is the artifact
  CI uploads;
* ``SIGTERM`` — the daemon exits 0 ("stopped cleanly").

The coalescing assertion is made race-free the same way the perf tier
does it: the boot sweep covers only ``allreduce``, so tuning a cold
collective costs a real sweep; the driver fires a leader, polls the
descriptor's ``inflight`` counter until the leader is visibly in
flight, then fires the followers into that window.  If a follower
still straggles past the sweep (a loaded CI host can oversleep
anything), the attempt retries on the next cold collective rather than
flaking.

Exit status is 0 only if every probe passes; failures print one
``smoke FAIL:`` line each and exit 1, so the Makefile target and the
CI job stay one-line consumers.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

__all__ = ["run_smoke", "main"]

#: Collectives the boot sweep deliberately leaves cold, in the order
#: the coalescing probe tries them.  Each retry needs a fresh one: the
#: previous attempt's sweep warms the service's simulation memo, which
#: would make a second attempt on the same collective near-instant.
_COLD_COLLECTIVES = ("alltoall", "reduce_scatter", "gather")

_BOOT_TIMEOUT_S = 120.0
_POLL_INTERVAL_S = 0.005


class _Smoke:
    """One smoke run: a served subprocess plus its probe client."""

    def __init__(self, output: Path, followers: int) -> None:
        from .client import TuningClient

        self.output = output
        self.followers = followers
        self.failures: List[str] = []
        self.proc: Optional[subprocess.Popen] = None
        self.client: Optional[TuningClient] = None

    # -- plumbing ------------------------------------------------------

    def fail(self, message: str) -> None:
        self.failures.append(message)
        print(f"smoke FAIL: {message}", file=sys.stderr)

    def check(self, ok: bool, message: str) -> bool:
        if ok:
            print(f"smoke ok: {message}")
        else:
            self.fail(message)
        return ok

    def boot(self) -> bool:
        """Spawn ``repro-serve`` and wait for its 'serving on' banner."""
        src = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            [
                sys.executable, "-c",
                "import sys; from repro.cli import main_serve; "
                "sys.exit(main_serve(sys.argv[1:]))",
                "--port", "0",
                "--machine", "reference", "--nodes", "8",
                # Boot only allreduce: a fast start, and every other
                # collective stays cold for the coalescing probe.
                "--collectives", "allreduce",
                "--min-bytes", "64", "--max-bytes", "8192",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        banner: List[str] = []

        def read() -> None:
            for line in self.proc.stdout:  # pragma: no branch
                if line.startswith("serving on "):
                    banner.append(line.split("serving on ", 1)[1].strip())
                    return

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(_BOOT_TIMEOUT_S)
        if not banner:
            self.fail(
                f"server did not print 'serving on' within "
                f"{_BOOT_TIMEOUT_S:.0f}s"
            )
            return False
        from .client import TuningClient

        self.client = TuningClient(banner[0])
        print(f"smoke ok: server up at {banner[0]}")
        return True

    # -- probes --------------------------------------------------------

    def probe_descriptor(self) -> Dict:
        info = self.client.info()
        self.check(
            info.get("service") == "repro-tuning-service"
            and info.get("collectives") == ["allreduce"],
            f"descriptor: {info.get('service')} on {info.get('machine')} "
            f"(p={info.get('nranks')}, {len(info.get('sizes', []))} sizes)",
        )
        return info

    def probe_select(self) -> None:
        choice = self.client.select("allreduce", 8, 4096)
        self.check(
            bool(choice.algorithm),
            f"/select allreduce p=8 n=4096 -> {choice.algorithm} "
            f"k={choice.k}",
        )
        # The same point through the exported artifact must agree.
        cfg = self.client.config()
        self.check(
            cfg.select("allreduce", 8, 4096) == choice,
            "/config selects the same choice as /select",
        )

    def probe_schedule(self) -> None:
        schedule, compiled = self.client.compiled_schedule(
            collective="allreduce", algorithm="recursive_doubling", p=8
        )
        by_fp = self.client.schedule(
            fingerprint=schedule.fingerprint()
        )
        self.check(
            by_fp["source_fingerprint"] == schedule.fingerprint(),
            f"/schedule round-trips by fingerprint "
            f"({schedule.fingerprint()[:16]}..., "
            f"{len(compiled.programs)} programs)",
        )

    def probe_coalescing(self, info: Dict) -> None:
        for collective in _COLD_COLLECTIVES:
            outcomes = self._coalesce_once(collective)
            if outcomes is None:
                continue  # leader won the race; retry on a colder one
            swept = outcomes.count("swept")
            joined = outcomes.count("coalesced")
            self.check(
                swept == 1 and joined == self.followers,
                f"/tune x{self.followers + 1} on cold {collective!r}: "
                f"{swept} swept, {joined} coalesced",
            )
            return
        self.fail(
            "coalescing probe could not catch a sweep in flight on any "
            f"cold collective {list(_COLD_COLLECTIVES)}"
        )

    def _coalesce_once(self, collective: str) -> Optional[List[str]]:
        """Leader + followers on one cold collective.

        Returns every request's ``outcome``, or ``None`` when the
        leader's sweep finished before the descriptor ever showed it in
        flight — an inconclusive attempt, not a failure.
        """
        outcomes: List[str] = []
        lock = threading.Lock()

        def tune() -> None:
            out = self.client.tune(collective)
            with lock:
                outcomes.append(out["outcome"])

        leader = threading.Thread(target=tune)
        leader.start()
        seen_inflight = False
        while leader.is_alive():
            if self.client.info()["inflight"] >= 1:
                seen_inflight = True
                break
            time.sleep(_POLL_INTERVAL_S)
        if not seen_inflight:
            leader.join()
            return None
        crowd = [
            threading.Thread(target=tune) for _ in range(self.followers)
        ]
        for t in crowd:
            t.start()
        for t in [leader, *crowd]:
            t.join()
        return outcomes

    def probe_metrics(self) -> None:
        text = self.client.metrics()
        self.check(
            "repro_server_requests_total" in text,
            "/metrics exposes repro_server_requests_total",
        )

    def probe_config_artifact(self) -> None:
        from .config import CONFIG_FORMAT, SelectionConfig

        self.client.save_config(self.output)
        cfg = SelectionConfig.load(self.output)
        self.check(
            CONFIG_FORMAT in self.output.read_text(encoding="utf-8")
            and "alltoall" in cfg.collectives,
            f"/config artifact saved to {self.output} "
            f"({len(cfg.timings)} timings, "
            f"collectives {list(cfg.collectives)})",
        )

    def shutdown(self) -> None:
        self.proc.send_signal(signal.SIGTERM)
        try:
            rc = self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.fail("server did not exit within 30s of SIGTERM")
            return
        self.check(rc == 0, f"SIGTERM -> clean exit (rc={rc})")


def run_smoke(output: Path, *, followers: int = 7) -> int:
    """Drive one full smoke run; return the process exit status."""
    smoke = _Smoke(output, followers)
    if not smoke.boot():
        if smoke.proc is not None:
            smoke.proc.kill()
        return 1
    try:
        info = smoke.probe_descriptor()
        smoke.probe_select()
        smoke.probe_schedule()
        smoke.probe_coalescing(info)
        smoke.probe_metrics()
        smoke.probe_config_artifact()
        smoke.shutdown()
    finally:
        if smoke.proc.poll() is None:
            smoke.proc.kill()
    if smoke.failures:
        print(f"serve smoke: {len(smoke.failures)} failure(s)",
              file=sys.stderr)
        return 1
    print("serve smoke: all probes passed")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.server.smoke``: the CI serve-smoke entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.smoke",
        description="Boot a repro-serve subprocess on an ephemeral port "
        "and smoke-test /select, /schedule, coalesced /tune, /metrics, "
        "/config, and clean SIGTERM shutdown.",
    )
    parser.add_argument("-o", "--output", type=Path,
                        default=Path("selection_config.json"),
                        help="where to save the exported selection-config "
                        "artifact (default selection_config.json)")
    parser.add_argument("--followers", type=int, default=7,
                        help="concurrent /tune requests expected to "
                        "coalesce behind the leader (default 7)")
    args = parser.parse_args(argv)
    return run_smoke(args.output, followers=args.followers)


if __name__ == "__main__":
    sys.exit(main())
