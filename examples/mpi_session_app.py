#!/usr/bin/env python3
"""Scenario: an MPI-style application on the library's collectives.

A miniature distributed solver — power iteration for the dominant
eigenvalue of a matrix, row-partitioned across ranks — written against the
``repro.Session`` facade exactly as it would be against mpi4py.  Every
``allreduce``/``allgather``/``bcast`` underneath is one of this library's
schedules, selected per call by an MPICH-style tuning table; swapping in a
tuned table changes the algorithms without touching the solver (the
paper's §VI-G user experience).

Run:  python examples/mpi_session_app.py
"""

import numpy as np

from repro import Session, frontier, mpich_policy, tune
from repro.runtime.session import Comm

N = 64          # matrix dimension
RANKS = 8       # "MPI processes"
ITERS = 60


def make_matrix() -> np.ndarray:
    """A symmetric matrix with a clearly dominant eigenvalue (2x spectral
    gap, so power iteration converges in a few dozen steps)."""
    rng = np.random.default_rng(3)
    a = rng.normal(size=(N, N))
    sym = (a + a.T) / 2
    v = rng.normal(size=N)
    v /= np.linalg.norm(v)
    return sym + 4 * N * np.outer(v, v)


def power_iteration(comm: Comm) -> float:
    """Each rank owns N/size rows; one iteration is a local matvec, an
    allgather of the partial result, and an allreduce for the norm."""
    rows_per = N // comm.size
    lo = comm.rank * rows_per

    # Rank 0 builds the matrix and broadcasts it (row blocks would be the
    # production layout; a full bcast keeps the demo short).
    if comm.rank == 0:
        flat = make_matrix().reshape(-1)
        a = comm.bcast(flat, root=0)
    else:
        a = comm.bcast(None, root=0, count=N * N, dtype=np.float64)
    my_rows = a.reshape(N, N)[lo : lo + rows_per]

    x = np.ones(N) / np.sqrt(N)
    eig = 0.0
    for _ in range(ITERS):
        local = my_rows @ x                       # local matvec
        y = comm.allgather(local)                 # assemble y = A·x
        # Rayleigh quotient λ = xᵀAx / xᵀx (x is unit length) and the new
        # norm, folded into one 2-element allreduce.
        stats = comm.allreduce(np.array([x @ y, y @ y]))
        eig = float(stats[0])
        x = y / np.sqrt(stats[1])
    comm.barrier()
    return eig


if __name__ == "__main__":
    truth = float(np.max(np.linalg.eigvalsh(make_matrix())))

    # Stock MPICH-style selection.
    results = Session(RANKS, table=mpich_policy()).run(power_iteration)
    assert all(abs(r - results[0]) < 1e-9 for r in results)
    print(f"power iteration across {RANKS} ranks: λ ≈ {results[0]:.6f} "
          f"(numpy: {truth:.6f})")
    assert abs(results[0] - truth) / truth < 1e-4

    # The same application on a tuned table: different collectives
    # underneath, identical numerics.
    table = tune(frontier(RANKS, 1), [64, 4096, 65536])
    tuned_results = Session(RANKS, table=table).run(power_iteration)
    assert abs(tuned_results[0] - results[0]) < 1e-9
    choice = table.select("allreduce", RANKS, 8 * 8)
    print(f"re-ran on tuned table (allreduce → {choice.describe()}): "
          f"identical λ ✓")
