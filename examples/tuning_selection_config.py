#!/usr/bin/env python3
"""Scenario: shipping a tuned MPICH selection configuration (paper §VI-G).

A facility operator wants application users to get the generalized-
algorithm speedups *transparently* — no source changes, just an
environment variable pointing MPICH at a tuning file.  This script is the
paper's §VI-G workflow end to end:

1. exhaustively sweep every algorithm × radix × message size on the
   target machine (simulated here),
2. distill the winners into a compact first-match-wins selection table,
3. write it as JSON (the tuning file),
4. demonstrate the gain: tuned selection vs the stock defaults and the
   vendor MPI stand-in, per collective and size.

Run:  python examples/tuning_selection_config.py
"""

import tempfile
from pathlib import Path

from repro.bench import format_size, format_table, geomean
from repro.bench.speedup import policy_latency
from repro.selection import SelectionTable, mpich_policy, tune, vendor_policy
from repro.simnet import frontier

machine = frontier(nodes=32, ppn=1)
sizes = [8, 128, 2048, 32768, 524288, 4 << 20]

# 1-2. Sweep and distill.
print(f"tuning {machine.describe()} over {len(sizes)} sizes ...")
table = tune(machine, sizes)
print()
print(table.describe())
print()

# 3. The tuning file a user would point MPICH at.
out = Path(tempfile.gettempdir()) / "repro-tuned-frontier32.json"
table.save(out)
restored = SelectionTable.load(out)  # round-trips losslessly
print(f"wrote tuning file: {out} ({len(restored.rules)} rules)\n")

# 4. What the user gains, without touching their application.
mpich = mpich_policy()
vendor = vendor_policy()
rows = []
gains_mpich = []
gains_vendor = []
for coll in ("bcast", "reduce", "allgather", "allreduce"):
    for n in sizes:
        t_tuned = policy_latency(restored, coll, machine, n)
        t_mpich = policy_latency(mpich, coll, machine, n)
        t_vendor = policy_latency(vendor, coll, machine, n)
        gains_mpich.append(t_mpich / t_tuned)
        gains_vendor.append(t_vendor / t_tuned)
        rows.append(
            [
                coll,
                format_size(n),
                restored.select(coll, machine.nranks, n).describe(),
                f"{t_tuned:.2f}",
                f"{t_mpich / t_tuned:.2f}x",
                f"{t_vendor / t_tuned:.2f}x",
            ]
        )
print(format_table(
    ["collective", "size", "tuned choice", "tuned µs", "vs mpich",
     "vs vendor"],
    rows,
    title="Transparent speedup from the tuning file",
))
print(f"\ngeomean speedup: {geomean(gains_mpich):.2f}x vs stock MPICH, "
      f"{geomean(gains_vendor):.2f}x vs the vendor stand-in")
