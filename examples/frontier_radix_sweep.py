#!/usr/bin/env python3
"""Scenario: tuning the collectives of an allreduce-heavy exascale code.

You are porting a data-parallel training / iterative-solver workload to a
Frontier-class machine (many nodes, 4 NIC ports each, 8 GPUs per node).
Its inner loop is dominated by MPI_Allreduce on gradient-sized buffers and
MPI_Bcast of model state — the workload mix §I of the paper motivates
(collectives are 25–50% of runtime).  Which algorithms and radices should
your MPICH configuration pin?

This script runs the paper's Fig. 8-style sweeps on the simulated machine
and prints the same guidance the paper derives:

* allreduce: recursive multiplying with k ≈ the NIC port count;
* bcast (large): k-ring with k = processes per node when running one
  process per GPU;
* bcast/reduce (small): k-nomial with a large radix.

Run:  python examples/frontier_radix_sweep.py
"""

from repro.bench import format_size, format_table, radix_latency_sweep
from repro.simnet import frontier

# ----------------------------------------------------------------------
# Allreduce: the gradient exchange. 128 nodes, one process per node.
# ----------------------------------------------------------------------
machine = frontier(nodes=128, ppn=1)
sizes = [1024, 65536, 1 << 20, 4 << 20]
ks = [2, 4, 8, 16]
sweep = radix_latency_sweep(
    "allreduce", "recursive_multiplying", machine, sizes, ks=ks
)
rows = [
    [format_size(n)] + [f"{sweep.latency(k, n):.1f}" for k in ks]
    + [f"k={sweep.best_k(n)}"]
    for n in sizes
]
print(format_table(
    ["size"] + [f"k={k} µs" for k in ks] + ["pick"],
    rows,
    title=f"MPI_Allreduce recursive multiplying on {machine.name} "
          f"({machine.nic_ports} NIC ports)",
))
print(f"→ pin allreduce to recursive multiplying, k≈{machine.nic_ports} "
      f"(the port count) for bandwidth-bound gradients\n")

# ----------------------------------------------------------------------
# Bcast of model state with one MPI process per GPU (8 ppn): the k-ring
# case.  Group size = ppn aligns the fast intra rounds with the node.
# ----------------------------------------------------------------------
gpu_machine = frontier(nodes=16, ppn=8)
big = [1 << 20, 4 << 20]
kring_ks = [1, 4, 8, 16, 128]
ksweep = radix_latency_sweep("bcast", "kring", gpu_machine, big, ks=kring_ks)
rows = [
    [format_size(n)] + [f"{ksweep.latency(k, n):.0f}" for k in kring_ks]
    + [f"k={ksweep.best_k(n)}"]
    for n in big
]
print(format_table(
    ["size"] + [f"k={k} µs" for k in kring_ks] + ["pick"],
    rows,
    title=f"MPI_Bcast k-ring on {gpu_machine.name} (1 process per GPU)",
))
ring_vs_best = ksweep.latency(1, 4 << 20) / ksweep.best_latency(4 << 20)
print(f"→ k-ring with k = ppn = {gpu_machine.ppn} is {ring_vs_best:.2f}x "
      f"faster than the classic ring at 4MiB\n")

# ----------------------------------------------------------------------
# Small-message reduce: the latency-bound control messages.
# ----------------------------------------------------------------------
small = [8, 512, 16384]
knomial_ks = [2, 8, 32, 128]
rsweep = radix_latency_sweep("reduce", "knomial", machine, small, ks=knomial_ks)
rows = [
    [format_size(n)] + [f"{rsweep.latency(k, n):.2f}" for k in knomial_ks]
    + [f"k={rsweep.best_k(n)}"]
    for n in small
]
print(format_table(
    ["size"] + [f"k={k} µs" for k in knomial_ks] + ["pick"],
    rows,
    title="MPI_Reduce k-nomial (small messages)",
))
gain = rsweep.latency(2, 8) / rsweep.best_latency(8)
print(f"→ a wide k-nomial tree is {gain:.2f}x faster than binomial for "
      f"8-byte reductions")
