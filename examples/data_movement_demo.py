#!/usr/bin/env python3
"""Scenario: watching a generalized collective actually move bytes.

For teaching (or debugging a new algorithm), this demo runs a k-ring
allgather on 6 ranks with k = 3 — the exact configuration of the paper's
Fig. 6 — three different ways:

1. symbolically, printing each rank's program (who talks to whom, when);
2. on real NumPy buffers, printing before/after;
3. on the thread-based transport (one OS thread per rank), proving the
   schedule is interleaving-safe.

Run:  python examples/data_movement_demo.py
"""

import numpy as np

from repro.core import build_schedule, verify
from repro.core.schedule import RecvOp, SendOp
from repro.runtime import (
    execute,
    execute_threaded,
    initial_buffers,
    make_inputs,
)

P, K, COUNT = 6, 3, 12

# ----------------------------------------------------------------------
# 1. The schedule, spelled out (paper Fig. 6: 2 intra + 1 inter + 2 intra
# rounds; groups {0,1,2} and {3,4,5}).
# ----------------------------------------------------------------------
sched = build_schedule("allgather", "kring", P, k=K)
print(f"{sched.describe()} — groups of {sched.meta['groups']}\n")
for prog in sched.programs:
    parts = []
    for step in prog.steps:
        ops = []
        for op in step.ops:
            if isinstance(op, SendOp):
                ops.append(f"send{list(op.blocks)}→{op.peer}")
            elif isinstance(op, RecvOp):
                ops.append(f"recv{list(op.blocks)}←{op.peer}")
        parts.append(" + ".join(ops))
    print(f"rank {prog.rank}: " + "  |  ".join(parts))
report = verify(sched)
print(f"\nsymbolic verification: OK ({report.delivered_messages} messages)\n")

# ----------------------------------------------------------------------
# 2. Real data. Each rank contributes a 2-element block; afterwards every
# rank holds the full 12-element concatenation.
# ----------------------------------------------------------------------
inputs = make_inputs("allgather", P, COUNT, rng=np.random.default_rng(7))
buffers = initial_buffers(sched, inputs, COUNT)
print("before (rank: buffer — negative sentinel = undefined slot):")
for r, buf in enumerate(buffers):
    print(f"  {r}: {buf.tolist()}")
execute(sched, buffers)
print("after:")
for r, buf in enumerate(buffers):
    print(f"  {r}: {buf.tolist()}")
expected = np.concatenate(inputs)
assert all(np.array_equal(buf, expected) for buf in buffers)
print("every rank holds the gathered buffer ✓\n")

# ----------------------------------------------------------------------
# 3. Same schedule, six real threads, FIFO channels, OS-scheduled
# interleaving — bit-identical outcome.
# ----------------------------------------------------------------------
threaded = initial_buffers(sched, inputs, COUNT)
execute_threaded(sched, threaded)
assert all(np.array_equal(a, b) for a, b in zip(buffers, threaded))
print("threaded execution (6 OS threads) matches the lockstep result ✓")
