#!/usr/bin/env python3
"""Scenario: will my Frontier tuning carry over to Polaris? (paper §VI-E)

A team tuned their collectives on a Frontier-class system and is granted
time on a Polaris-class one (2 NIC ports instead of 4; fully connected
NVLink GPUs instead of a shared Infinity Fabric hierarchy).  The paper's
answer — and this script's — is nuanced:

* k-nomial and recursive multiplying trends *transfer*: the same
  system-agnostic implementation finds its optimum at each machine's own
  port count / buffering limits (Fig. 11a/b);
* k-ring does *not* transfer: with no intranode latency advantage, the
  radix barely matters on Polaris (Fig. 11c).

Run:  python examples/polaris_comparison.py
"""

from repro.bench import format_size, format_table, radix_latency_sweep
from repro.simnet import frontier, polaris

SIZES = [1024, 65536, 1 << 20]

# ----------------------------------------------------------------------
# Recursive multiplying allreduce: optimum tracks each machine's ports.
# ----------------------------------------------------------------------
ks = [2, 3, 4, 5, 8, 16]
print("MPI_Allreduce recursive multiplying — optimal radix per machine")
rows = []
for machine in (frontier(128, 1), polaris(128, 1)):
    sweep = radix_latency_sweep(
        "allreduce", "recursive_multiplying", machine, SIZES, ks=ks
    )
    for n in SIZES:
        rows.append(
            [machine.name, f"{machine.nic_ports} ports", format_size(n),
             f"k={sweep.best_k(n)}", f"{sweep.best_latency(n):.1f}"]
        )
print(format_table(
    ["machine", "NICs", "size", "best radix", "latency µs"], rows
))
print("→ one implementation, two machines, each finding its own "
      "hardware's sweet spot (§I's headline claim)\n")

# ----------------------------------------------------------------------
# K-ring bcast: the transfer FAILS here, by design of the hardware.
# ----------------------------------------------------------------------
kring_ks = [1, 2, 4, 8, 16]
rows = []
for machine, ppn in ((frontier(16, 8), 8), (polaris(32, 4), 4)):
    sweep = radix_latency_sweep(
        "bcast", "kring", machine, [1 << 20], ks=kring_ks
    )
    flat = sweep.flatness(1 << 20)
    rows.append(
        [machine.name, f"{ppn} ppn",
         " / ".join(f"{sweep.latency(k, 1 << 20):.0f}" for k in kring_ks),
         f"k={sweep.best_k(1 << 20)}", f"{flat:.2f}"]
    )
print(format_table(
    ["machine", "layout", f"latency µs for k={kring_ks}", "best",
     "max/min over k"],
    rows,
    title="MPI_Bcast k-ring at 1MiB — radix sensitivity",
))
print("→ Frontier's hierarchy rewards k = ppn; Polaris's flat NVLink "
      "node makes the radix nearly irrelevant (Fig. 11c)")
