#!/usr/bin/env python3
"""Quickstart: the three things this library does, in 60 lines.

1. Build a generalized collective schedule and *prove* it correct.
2. Execute it on real NumPy data and check against the oracle.
3. Time it on a simulated exascale machine and compare radices.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro

# ----------------------------------------------------------------------
# 1. Build and verify a schedule.
#
# A recursive-multiplying allreduce on 16 processes with radix 4: every
# round each process exchanges partial sums with 3 partners, finishing in
# log_4(16) = 2 rounds instead of recursive doubling's 4.
# ----------------------------------------------------------------------
schedule = repro.build("allreduce", "recursive_multiplying", p=16, k=4)
report = repro.verify(schedule)  # symbolic proof of the collective contract
print(f"schedule: {schedule.describe()}")
print(f"verified: {report.delivered_messages} messages, no double counting")

# ----------------------------------------------------------------------
# 2. Move real data through it.
# ----------------------------------------------------------------------
run = repro.execute(
    "allreduce", "recursive_multiplying", p=16, count=1024, k=4
)
assert np.array_equal(run.buffers[0], run.expected[0])
print(f"data check: rank 0 buffer matches the NumPy oracle "
      f"({run.buffers[0][:4]}...)")

# ----------------------------------------------------------------------
# 3. Time it on a simulated Frontier (128 nodes, 4 NIC ports per node).
#
# The radix trades rounds against per-round fan-out; the sweet spot sits
# near the port count — the paper's headline empirical finding (Fig. 8b).
# ----------------------------------------------------------------------
machine = repro.frontier(nodes=128, ppn=1)
print(f"\nmachine: {machine.describe()}")
print(f"{'radix':>6} {'64KiB allreduce':>16}")
for k in (2, 4, 8, 16):
    sched = repro.build(
        "allreduce", "recursive_multiplying", p=machine.nranks, k=k
    )
    t = repro.simulate(sched, machine, nbytes=65536).time_us
    print(f"{k:>6} {t:>13.1f} µs")

# The paper's analytical model (eq. (6)) for comparison:
params = repro.ModelParams(
    alpha=machine.alpha_inter, beta=machine.beta_inter, gamma=machine.gamma
)
predicted = repro.optimal_radix(
    lambda n, p, k, pr: repro.model_time(
        "allreduce", "recursive_multiplying", n, p, pr, k=k
    ),
    65536,
    machine.nranks,
    params,
)
print(f"\nmodel-predicted optimal radix (eq. 6): k={predicted}")
print("(the simulator disagrees for small messages — that gap is the "
      "paper's point: hardware port counts beat the α-β model)")
