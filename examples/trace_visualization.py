#!/usr/bin/env python3
"""Scenario: seeing *why* one algorithm beats another.

Latency numbers say k-ring wins; a timeline says why.  This script
simulates the classic ring and the k-ring broadcast on the 8-ppn Frontier
model with full timeline collection, then:

1. writes Chrome-trace JSON for both (open at https://ui.perfetto.dev or
   chrome://tracing — one row per rank, one bar per message), and
2. prints the quantitative story: per-link-class busy time and peak
   concurrency, showing the classic ring trickling over the NIC while
   k-ring batches its internode rounds and runs the rest on the fabric.

Run:  python examples/trace_visualization.py
"""

import tempfile
from pathlib import Path

from repro import build, frontier, simulate
from repro.simnet import timeline_stats, write_chrome_trace

machine = frontier(nodes=8, ppn=8)
p = machine.nranks
NBYTES = 1 << 20

out_dir = Path(tempfile.gettempdir())
print(f"machine: {machine.describe()}, bcast of 1MiB across {p} ranks\n")

for label, k in (("classic ring", 1), ("k-ring (k = ppn = 8)", 8)):
    sched = build("bcast", "kring", p=p, k=k)
    result = simulate(sched, machine, nbytes=NBYTES, timeline=True)
    stats = timeline_stats(result, p)
    trace_path = write_chrome_trace(
        result, out_dir / f"repro-kring-k{k}.trace.json"
    )
    intra = stats.busy_time.get("intra", 0.0) * 1e6
    inter = (
        stats.busy_time.get("inter", 0.0) + stats.busy_time.get("global", 0.0)
    ) * 1e6
    print(f"{label}:")
    print(f"  makespan            {result.time_us:10.1f} µs")
    print(f"  intranode busy time {intra:10.1f} µs "
          f"({stats.utilization('intra'):.1f} links-worth sustained)")
    print(f"  internode busy time {inter:10.1f} µs")
    print(f"  peak concurrency    {stats.max_concurrent:10d} messages")
    print(f"  trace               {trace_path}")
    print()

print("reading: the classic ring's makespan is dominated by internode")
print("serialization (every round waits on a NIC hop somewhere); k-ring")
print("shifts most rounds onto the intranode fabric — higher intranode")
print("busy time, shorter critical path. Load the two traces side by side")
print("to see the gap between inter-group rounds widen.")
