#!/usr/bin/env python3
"""Scenario: how far can you trust the α-β-γ models? (paper §III–V, §VI-F)

Before spending node-hours sweeping radices empirically, an analyst wants
to know where the paper's closed-form cost models are reliable.  This
script:

1. calibrates (α, β) from simulated ping-pong measurements by least
   squares — the standard procedure on a real machine;
2. compares every model against the simulator on the *reference* machine
   (which realizes the models' assumptions) — agreement should be exact;
3. repeats on the Frontier-like machine, where multi-port NICs and
   injection overheads break the models — quantifying the gap the paper
   reports ("empirical analysis contradicted our analytical intuition").

Run:  python examples/model_validation.py
"""

from repro.bench import format_size, format_table
from repro.core import build_schedule
from repro.core.schedule import RankProgram, RecvOp, Schedule, SendOp
from repro.models import ModelParams, fit_ptp, model_time
from repro.simnet import frontier, reference, simulate

# ----------------------------------------------------------------------
# 1. Calibrate α and β from ping measurements (one message, two ranks).
# ----------------------------------------------------------------------
p0 = RankProgram(rank=0)
p0.add(SendOp(peer=1, blocks=(0,)))
p1 = RankProgram(rank=1)
p1.add(RecvOp(peer=0, blocks=(0,)))
ping = Schedule(collective="bcast", algorithm="ping", nranks=2, nblocks=1,
                programs=[p0, p1], root=0)

machine = reference(2)
sizes = [2**i for i in range(3, 22)]
times = [simulate(ping, machine, n).time for n in sizes]
fit = fit_ptp(sizes, times)
print(f"fitted point-to-point model: {fit.describe()}")
print(f"machine truth:               α={machine.alpha_inter * 1e6:.3f}µs  "
      f"β={machine.beta_inter * 1e9:.4f}ns/B\n")

# ----------------------------------------------------------------------
# 2. Model vs simulator on the reference machine (models should be exact).
# 3. Same on Frontier-sim (models should drift where hardware kicks in).
# ----------------------------------------------------------------------
CASES = [
    ("bcast", "binomial", None),
    ("bcast", "knomial", 4),
    ("reduce", "knomial", 4),
    ("allgather", "recursive_doubling", None),
    ("allreduce", "recursive_multiplying", 4),
    ("allgather", "ring", None),
]
P = 64
for label, mach in (("reference", reference(P)), ("frontier", frontier(P, 1))):
    params = ModelParams(alpha=mach.alpha_inter, beta=mach.beta_inter,
                         gamma=mach.gamma)
    rows = []
    for coll, alg, k in CASES:
        sched = build_schedule(coll, alg, P, k=k)
        for n in (1024, 1 << 20):
            m_us = model_time(coll, alg, n, P, params, k=k) * 1e6
            s_us = simulate(sched, mach, n).time_us
            rows.append(
                [f"{coll}/{alg}" + (f"(k={k})" if k else ""),
                 format_size(n), f"{m_us:.1f}", f"{s_us:.1f}",
                 f"{s_us / m_us:.2f}"]
            )
    print(format_table(
        ["algorithm", "size", "model µs", "sim µs", "sim/model"],
        rows,
        title=f"--- {label} machine (p={P}) ---",
    ))
    print()

print("reading: sim/model ≈ 1.00 on the reference machine = the models "
      "are internally exact;\nthe Frontier column shows where real "
      "hardware features (4 ports, injection overhead, dragonfly)\n"
      "overtake the theory — e.g. multi-port NICs make wide fan-outs "
      "cheaper than eq. (3) predicts.")
